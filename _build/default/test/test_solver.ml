open Nettomo_graph
open Nettomo_core
open Nettomo_linalg
module Prng = Nettomo_util.Prng

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let fig1_net =
  Net.create Fixtures.fig1 ~monitors:[ Fixtures.fig1_m1; Fixtures.fig1_m2; Fixtures.fig1_m3 ]

let weights_equal recovered truth =
  List.for_all
    (fun (e, x) -> Rational.equal x (Measurement.weight truth e))
    recovered

let test_plan_full_rank_fig1 () =
  let plan = Solver.independent_paths ~rng:(Prng.create 1) fig1_net in
  check ci "eleven independent paths" 11 plan.Solver.rank;
  check cb "full rank" true (Solver.full_rank fig1_net plan);
  List.iter
    (fun p ->
      check cb "every plan path is a measurement path" true
        (Measurement.is_measurement_path fig1_net p))
    plan.Solver.paths

let test_recover_fig1 () =
  let rng = Prng.create 2 in
  let truth = Measurement.random_weights ~lo:1 ~hi:50 rng Fixtures.fig1 in
  match Solver.recover ~rng fig1_net truth with
  | Some recovered ->
      check ci "one metric per link" 11 (List.length recovered);
      check cb "metrics recovered exactly" true (weights_equal recovered truth)
  | None -> Alcotest.fail "fig1 is identifiable"

let test_recover_unidentifiable () =
  let net = Net.with_monitors fig1_net [ 0; 1 ] in
  let rng = Prng.create 3 in
  let truth = Measurement.random_weights rng Fixtures.fig1 in
  check cb "refuses on two monitors" true (Solver.recover ~rng net truth = None)

let test_solve_validates () =
  let plan = Solver.independent_paths ~rng:(Prng.create 4) fig1_net in
  Alcotest.check_raises "wrong measurement length"
    (Invalid_argument "Solver.solve: measurement length mismatch") (fun () ->
      ignore (Solver.solve plan [| Rational.one |]))

let test_solve_partial_plan_rejected () =
  let net = Net.with_monitors fig1_net [ 0; 1 ] in
  let plan = Solver.independent_paths ~rng:(Prng.create 5) net in
  check cb "plan is not full rank" false (Solver.full_rank net plan);
  Alcotest.check_raises "partial plan rejected"
    (Invalid_argument "Solver.solve: plan is not full rank") (fun () ->
      ignore
        (Solver.solve plan
           (Array.make (Graph.n_edges Fixtures.fig1) Rational.one)))

let test_rank_matches_bruteforce_rank () =
  (* The plan's maximal rank equals the rank over all simple paths. *)
  let net = Net.with_monitors fig1_net [ 0; 1 ] in
  let plan = Solver.independent_paths ~rng:(Prng.create 6) net in
  let basis = Identifiability.measurement_basis net in
  check ci "maximal plan rank" (Basis.rank basis) plan.Solver.rank

let prop_recover_roundtrip_mmp =
  QCheck2.Test.make
    ~name:"recover round-trips exactly on MMP-monitored random graphs"
    ~count:60
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 4 12) (int_range 0 12))
    (fun (seed, n, extra) ->
      let rng = Prng.create seed in
      let g = Fixtures.random_connected rng n extra in
      let monitors = Graph.NodeSet.elements (Nettomo_core.Mmp.place g) in
      let net = Net.create g ~monitors in
      let truth = Measurement.random_weights ~lo:1 ~hi:1000 rng g in
      match Solver.recover ~rng net truth with
      | Some recovered ->
          List.length recovered = Graph.n_edges g && weights_equal recovered truth
      | None -> false)

let prop_plan_paths_independent =
  QCheck2.Test.make ~name:"plan paths are linearly independent" ~count:60
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 4 12) (int_range 0 12))
    (fun (seed, n, extra) ->
      let rng = Prng.create seed in
      let g = Fixtures.random_connected rng n extra in
      let kappa = min (Graph.n_nodes g) 3 in
      let monitors = Array.to_list (Prng.sample rng kappa (Graph.node_array g)) in
      let net = Net.create g ~monitors in
      let plan = Solver.independent_paths ~rng net in
      plan.Solver.paths = []
      || Matrix.rank (Measurement.matrix plan.Solver.space plan.Solver.paths)
         = List.length plan.Solver.paths)

let test_enumeration_fallback_on_small () =
  (* Force the randomized layer to do nothing (max_stall = 0): the
     exhaustive fallback must still reach full rank on a small graph. *)
  let plan = Solver.independent_paths ~rng:(Prng.create 8) ~max_stall:0 fig1_net in
  check cb "fallback reaches full rank" true (Solver.full_rank fig1_net plan)

let test_single_link_network () =
  let g = Graph.of_edges [ (0, 1) ] in
  let net = Net.create g ~monitors:[ 0; 1 ] in
  let plan = Solver.independent_paths ~rng:(Prng.create 9) net in
  check ci "one path" 1 plan.Solver.rank;
  check cb "full" true (Solver.full_rank net plan)

let test_no_monitor_pairs () =
  let net = Net.create Fixtures.fig1 ~monitors:[ 0 ] in
  let plan = Solver.independent_paths ~rng:(Prng.create 10) net in
  check ci "no paths without a pair" 0 plan.Solver.rank

let suite =
  [
    Alcotest.test_case "fig1 plan reaches full rank" `Quick test_plan_full_rank_fig1;
    Alcotest.test_case "fig1 metrics recovered exactly" `Quick test_recover_fig1;
    Alcotest.test_case "recover refuses unidentifiable" `Quick
      test_recover_unidentifiable;
    Alcotest.test_case "solve validates input" `Quick test_solve_validates;
    Alcotest.test_case "partial plans rejected" `Quick test_solve_partial_plan_rejected;
    Alcotest.test_case "plan rank is maximal" `Quick test_rank_matches_bruteforce_rank;
    Alcotest.test_case "enumeration fallback" `Quick test_enumeration_fallback_on_small;
    Alcotest.test_case "single-link network" `Quick test_single_link_network;
    Alcotest.test_case "no monitor pairs" `Quick test_no_monitor_pairs;
    QCheck_alcotest.to_alcotest prop_recover_roundtrip_mmp;
    QCheck_alcotest.to_alcotest prop_plan_paths_independent;
  ]
