open Nettomo_linalg

let check = Alcotest.check
let cb = Alcotest.bool
let cs = Alcotest.string

let q = Alcotest.testable Rational.pp Rational.equal

let test_normalization () =
  check q "6/8 = 3/4" (Rational.of_ints 3 4) (Rational.of_ints 6 8);
  check q "negative denominator" (Rational.of_ints (-1) 2) (Rational.of_ints 1 (-2));
  check q "0/n = 0" Rational.zero (Rational.of_ints 0 17);
  check cs "den positive" "2" (Bigint.to_string (Rational.den (Rational.of_ints 1 (-2))));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Rational.of_ints 1 0))

let test_arith () =
  let half = Rational.of_ints 1 2 and third = Rational.of_ints 1 3 in
  check q "1/2 + 1/3" (Rational.of_ints 5 6) (Rational.add half third);
  check q "1/2 - 1/3" (Rational.of_ints 1 6) (Rational.sub half third);
  check q "1/2 * 1/3" (Rational.of_ints 1 6) (Rational.mul half third);
  check q "1/2 ÷ 1/3" (Rational.of_ints 3 2) (Rational.div half third);
  check q "neg" (Rational.of_ints (-1) 2) (Rational.neg half);
  check q "abs" half (Rational.abs (Rational.neg half));
  check q "inv" (Rational.of_int 2) (Rational.inv half);
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Rational.inv Rational.zero))

let test_compare () =
  check cb "1/2 < 2/3" true Rational.(compare (of_ints 1 2) (of_ints 2 3) < 0);
  check cb "-1/2 < 1/3" true Rational.(compare (of_ints (-1) 2) (of_ints 1 3) < 0);
  check cb "equal" true Rational.(compare (of_ints 2 4) (of_ints 1 2) = 0);
  check q "min" (Rational.of_ints 1 3) Rational.(min (of_ints 1 2) (of_ints 1 3));
  check q "max" (Rational.of_ints 1 2) Rational.(max (of_ints 1 2) (of_ints 1 3))

let test_predicates () =
  check cb "is_zero" true (Rational.is_zero Rational.zero);
  check cb "sign of -3/4" true (Rational.sign (Rational.of_ints (-3) 4) = -1);
  check cb "is_integer 4/2" true (Rational.is_integer (Rational.of_ints 4 2));
  check cb "is_integer 1/2" false (Rational.is_integer (Rational.of_ints 1 2))

let test_strings () =
  check cs "integer render" "5" (Rational.to_string (Rational.of_int 5));
  check cs "fraction render" "-3/4" (Rational.to_string (Rational.of_ints 3 (-4)));
  check q "parse int" (Rational.of_int 12) (Rational.of_string "12");
  check q "parse fraction" (Rational.of_ints 7 3) (Rational.of_string "7/3");
  check q "parse decimal" (Rational.of_ints 13 4) (Rational.of_string "3.25");
  check q "parse negative decimal" (Rational.of_ints (-1) 2)
    (Rational.of_string "-0.5");
  Alcotest.check_raises "malformed"
    (Invalid_argument "Rational.of_string: malformed rational") (fun () ->
      ignore (Rational.of_string "1/2/3"))

let test_to_float () =
  check (Alcotest.float 1e-12) "to_float" 0.75
    (Rational.to_float (Rational.of_ints 3 4))

let gen_q =
  QCheck2.Gen.(
    map
      (fun (n, d) -> Rational.of_ints n (if d = 0 then 1 else d))
      (pair (int_range (-10_000) 10_000) (int_range (-10_000) 10_000)))

let prop_field_axioms =
  QCheck2.Test.make ~name:"field identities" ~count:300
    QCheck2.Gen.(triple gen_q gen_q gen_q)
    (fun (a, b, c) ->
      let open Rational in
      equal (add a b) (add b a)
      && equal (add (add a b) c) (add a (add b c))
      && equal (mul a (add b c)) (add (mul a b) (mul a c))
      && equal (add a (neg a)) zero
      && equal (mul a one) a)

let prop_inverse =
  QCheck2.Test.make ~name:"multiplicative inverse" ~count:300 gen_q (fun a ->
      QCheck2.assume (not (Rational.is_zero a));
      Rational.(equal (mul a (inv a)) one))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"to_string/of_string roundtrip" ~count:300 gen_q
    (fun a -> Rational.equal a (Rational.of_string (Rational.to_string a)))

let prop_compare_consistent_with_sub =
  QCheck2.Test.make ~name:"compare consistent with subtraction sign" ~count:300
    (QCheck2.Gen.pair gen_q gen_q) (fun (a, b) ->
      Rational.compare a b = Rational.sign (Rational.sub a b))

let suite =
  [
    Alcotest.test_case "normalization" `Quick test_normalization;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "comparison" `Quick test_compare;
    Alcotest.test_case "predicates" `Quick test_predicates;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "to_float" `Quick test_to_float;
    QCheck_alcotest.to_alcotest prop_field_axioms;
    QCheck_alcotest.to_alcotest prop_inverse;
    QCheck_alcotest.to_alcotest prop_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_compare_consistent_with_sub;
  ]
