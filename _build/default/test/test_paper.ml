open Nettomo_graph
open Nettomo_core
open Nettomo_linalg

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let test_fig1_shape () =
  let g = Net.graph Paper.fig1 in
  check ci "7 nodes" 7 (Graph.n_nodes g);
  check ci "11 links" 11 (Graph.n_edges g);
  check ci "3 monitors" 3 (Net.kappa Paper.fig1);
  check Alcotest.string "label of m1" "m1" (Net.label Paper.fig1 0);
  check Alcotest.string "label of x" "x" (Net.label Paper.fig1 6)

let test_fig1_link_names () =
  check ci "all 11 links named" 11 (Graph.EdgeMap.cardinal Paper.fig1_link_names);
  check Alcotest.string "l9 is the m3-m2 link" "l9"
    (Graph.EdgeMap.find (Graph.edge 2 1) Paper.fig1_link_names)

let test_fig1_paths () =
  check ci "eleven paths" 11 (List.length Paper.fig1_paths);
  List.iter
    (fun p ->
      check cb "each path is measurable" true
        (Measurement.is_measurement_path Paper.fig1 p))
    Paper.fig1_paths;
  (* One m1→m2 path, seven m1→m3, three m3→m2, as in Section 2.3. *)
  let count src dst =
    List.length
      (List.filter
         (fun p ->
           List.hd p = src && List.nth p (List.length p - 1) = dst)
         Paper.fig1_paths)
  in
  check ci "one m1->m2" 1 (count 0 1);
  check ci "seven m1->m3" 7 (count 0 2);
  check ci "three m3->m2" 3 (count 2 1)

let test_fig1_full_rank () =
  let space = Measurement.space (Net.graph Paper.fig1) in
  check ci "paper's path set has full rank" 11
    (Matrix.rank (Measurement.matrix space Paper.fig1_paths))

let test_fig6_shape () =
  let g = Net.graph Paper.fig6 in
  check ci "7 nodes" 7 (Graph.n_nodes g);
  check ci "10 links" 10 (Graph.n_edges g);
  check ci "2 monitors" 2 (Net.kappa Paper.fig6);
  check cb "interior identifiable" true
    (Identifiability.interior_identifiable_two Paper.fig6)

let test_fig8_like_shape () =
  check ci "22 nodes" 22 (Graph.n_nodes Paper.fig8_like);
  check ci "35 links" 35 (Graph.n_edges Paper.fig8_like);
  let r = Mmp.place_report Paper.fig8_like in
  check ci "MMP places 10 monitors" 10 (Graph.NodeSet.cardinal r.Mmp.monitors);
  (* Exercises all the structural rules. *)
  check ci "six by degree" 6 (Graph.NodeSet.cardinal r.Mmp.by_degree);
  check cb "rule (iii) used" true
    (not (Graph.NodeSet.is_empty r.Mmp.by_triconnected));
  check cb "rule (iv) used" true
    (not (Graph.NodeSet.is_empty r.Mmp.by_biconnected));
  check cb "identifiable" true
    (Identifiability.network_identifiable
       (Net.create Paper.fig8_like
          ~monitors:(Graph.NodeSet.elements r.Mmp.monitors)))

let suite =
  [
    Alcotest.test_case "fig1 shape and labels" `Quick test_fig1_shape;
    Alcotest.test_case "fig1 link names" `Quick test_fig1_link_names;
    Alcotest.test_case "fig1 paths as in Section 2.3" `Quick test_fig1_paths;
    Alcotest.test_case "fig1 full-rank path set" `Quick test_fig1_full_rank;
    Alcotest.test_case "fig6 shape" `Quick test_fig6_shape;
    Alcotest.test_case "fig8-like shape and MMP" `Quick test_fig8_like_shape;
  ]
