open Nettomo_graph

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let test_is_simple_path () =
  let g = Fixtures.fig1 in
  check cb "valid path" true (Paths.is_simple_path g [ 0; 4; 5; 2 ]);
  check cb "single node is not a path" false (Paths.is_simple_path g [ 0 ]);
  check cb "empty is not a path" false (Paths.is_simple_path g []);
  check cb "repeated node" false (Paths.is_simple_path g [ 0; 4; 0 ]);
  check cb "missing edge" false (Paths.is_simple_path g [ 0; 1 ]);
  check cb "unknown node" false (Paths.is_simple_path g [ 0; 42 ])

let test_path_edges () =
  check
    (Alcotest.list Fixtures.edge_testable)
    "edges normalized"
    [ (0, 4); (4, 5); (2, 5) ]
    (Paths.path_edges [ 0; 4; 5; 2 ]);
  Alcotest.check_raises "too short"
    (Invalid_argument "Paths.path_edges: need at least two nodes") (fun () ->
      ignore (Paths.path_edges [ 3 ]))

let test_length () =
  check ci "length" 3 (Paths.length [ 0; 4; 5; 2 ])

let test_all_simple_paths_cycle () =
  (* On a cycle there are exactly two simple paths between any pair. *)
  let ps = Paths.all_simple_paths (Fixtures.cycle_graph 6) 0 3 in
  check ci "two paths" 2 (List.length ps);
  List.iter
    (fun p ->
      check cb "each is simple" true
        (Paths.is_simple_path (Fixtures.cycle_graph 6) p))
    ps

let test_all_simple_paths_k4 () =
  (* K4 between adjacent nodes: direct, 2 via one intermediate, 2 via both
     orders of two intermediates = 5. *)
  check ci "k4 paths" 5 (List.length (Paths.all_simple_paths Fixtures.k4 0 1))

let test_all_simple_paths_disconnected () =
  let g = Graph.of_edges [ (0, 1); (2, 3) ] in
  check ci "no paths across components" 0
    (List.length (Paths.all_simple_paths g 0 3))

let test_count_matches_enumeration () =
  let g = Fixtures.petersen in
  check ci "count = length of enumeration"
    (List.length (Paths.all_simple_paths g 0 6))
    (Paths.count_simple_paths g 0 6)

let test_limit () =
  check cb "limit raises" true
    (try
       ignore (Paths.all_simple_paths ~limit:2 Fixtures.k5 0 1);
       false
     with Paths.Limit_exceeded -> true)

let test_random_simple_path () =
  let rng = Nettomo_util.Prng.create 42 in
  let g = Fixtures.petersen in
  for _ = 1 to 50 do
    match Paths.random_simple_path rng g 0 7 with
    | Some p ->
        check cb "simple" true (Paths.is_simple_path g p);
        check ci "starts at 0" 0 (List.hd p);
        check ci "ends at 7" 7 (List.nth p (List.length p - 1))
    | None -> Alcotest.fail "path must exist"
  done;
  let g2 = Graph.of_edges [ (0, 1); (2, 3) ] in
  check cb "none across components" true
    (Paths.random_simple_path rng g2 0 3 = None)

let test_random_path_variety () =
  (* The randomized search should find several distinct paths. *)
  let rng = Nettomo_util.Prng.create 7 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 100 do
    match Paths.random_simple_path rng Fixtures.k4 0 1 with
    | Some p -> Hashtbl.replace seen p ()
    | None -> Alcotest.fail "path must exist"
  done;
  check cb "at least 3 distinct paths out of 5" true (Hashtbl.length seen >= 3)

let prop_enumerated_paths_simple_and_distinct =
  QCheck2.Test.make ~name:"enumerated paths are simple and distinct" ~count:150
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 3 9) (int_range 0 8))
    (fun (seed, n, extra) ->
      let rng = Nettomo_util.Prng.create seed in
      let g = Fixtures.random_connected rng n extra in
      let ps = Paths.all_simple_paths g 0 (n - 1) in
      List.for_all (Paths.is_simple_path g) ps
      && List.length (List.sort_uniq compare ps) = List.length ps)

let suite =
  [
    Alcotest.test_case "is_simple_path" `Quick test_is_simple_path;
    Alcotest.test_case "path_edges" `Quick test_path_edges;
    Alcotest.test_case "length" `Quick test_length;
    Alcotest.test_case "cycle enumeration" `Quick test_all_simple_paths_cycle;
    Alcotest.test_case "k4 enumeration" `Quick test_all_simple_paths_k4;
    Alcotest.test_case "no paths across components" `Quick
      test_all_simple_paths_disconnected;
    Alcotest.test_case "count matches enumeration" `Quick
      test_count_matches_enumeration;
    Alcotest.test_case "limit guard" `Quick test_limit;
    Alcotest.test_case "random simple path" `Quick test_random_simple_path;
    Alcotest.test_case "random path variety" `Quick test_random_path_variety;
    QCheck_alcotest.to_alcotest prop_enumerated_paths_simple_and_distinct;
  ]
