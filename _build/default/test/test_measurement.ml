open Nettomo_graph
open Nettomo_core
open Nettomo_linalg

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let q = Alcotest.testable Rational.pp Rational.equal

let fig1_net =
  Net.create Fixtures.fig1 ~monitors:[ Fixtures.fig1_m1; Fixtures.fig1_m2; Fixtures.fig1_m3 ]

(* The eleven measurement paths of the Section 2.3 example, as node
   sequences in our node numbering (m1 = 0, m2 = 1, m3 = 2, a = 3,
   b = 4, c = 5, x = 6). *)
let fig1_paths =
  [
    [ 0; 4; 5; 6; 1 ];       (* m1→m2: l1 l4 l8 l11 *)
    [ 0; 4; 5; 2 ];          (* m1→m3: l1 l4 l7 *)
    [ 0; 3; 4; 5; 2 ];       (* l2 l3 l4 l7 *)
    [ 0; 3; 5; 6; 2 ];       (* l2 l5 l8 l10 *)
    [ 0; 3; 2 ];             (* l2 l6 *)
    [ 0; 3; 5; 2 ];          (* l2 l5 l7 *)
    [ 0; 4; 3; 2 ];          (* l1 l3 l6 *)
    [ 0; 4; 5; 3; 2 ];       (* l1 l4 l5 l6 *)
    [ 2; 1 ];                (* m3→m2: l9 *)
    [ 2; 6; 1 ];             (* l10 l11 *)
    [ 2; 3; 5; 6; 1 ];       (* l6 l5 l8 l11 *)
  ]

let test_space () =
  let s = Measurement.space Fixtures.fig1 in
  check ci "eleven links" 11 (Measurement.n_links s);
  let order = Measurement.link_order s in
  Array.iteri
    (fun j e -> check ci (Printf.sprintf "column of link %d" j) j (Measurement.column s e))
    order;
  check cb "unknown link" true
    (try
       ignore (Measurement.column s (Graph.edge 0 6));
       false
     with Not_found -> true)

let test_path_validation () =
  check cb "valid measurement path" true
    (Measurement.is_measurement_path fig1_net [ 0; 4; 5; 2 ]);
  check cb "must start at monitor" false
    (Measurement.is_measurement_path fig1_net [ 3; 5; 2 ]);
  check cb "through a monitor is fine (still simple)" true
    (Measurement.is_measurement_path fig1_net [ 0; 3; 2; 1 ]);
  check cb "non-simple rejected" false
    (Measurement.is_measurement_path fig1_net [ 0; 3; 4; 3; 2 ]);
  (match Measurement.check_measurement_path fig1_net [ 3; 5; 2 ] with
  | Error e -> check Alcotest.string "error message" "path does not start at a monitor" e
  | Ok () -> Alcotest.fail "expected error")

let test_all_fig1_paths_valid () =
  List.iter
    (fun p ->
      check cb
        (Printf.sprintf "path %s valid" (String.concat "-" (List.map string_of_int p)))
        true
        (Measurement.is_measurement_path fig1_net p))
    fig1_paths

let test_incidence_row () =
  let s = Measurement.space Fixtures.fig1 in
  let row = Measurement.incidence_row s [ 2; 1 ] in
  let ones = Array.to_list row |> List.filter (fun x -> not (Rational.is_zero x)) in
  check ci "single-link path has one 1" 1 (List.length ones);
  check q "entry is at l9's column" Rational.one row.(Measurement.column s (Graph.edge 2 1))

let test_fig1_matrix_invertible () =
  (* The headline claim of Section 2.3: these eleven paths make R
     invertible, so all metrics are uniquely identified. *)
  let s = Measurement.space Fixtures.fig1 in
  let r = Measurement.matrix s fig1_paths in
  check ci "11x11" 11 (Matrix.rows r);
  check ci "full rank" 11 (Matrix.rank r)

let test_measure () =
  let rng = Nettomo_util.Prng.create 77 in
  let w = Measurement.random_weights ~lo:1 ~hi:9 rng Fixtures.fig1 in
  let p = [ 0; 3; 2 ] in
  let expected =
    Rational.add
      (Measurement.weight w (Graph.edge 0 3))
      (Measurement.weight w (Graph.edge 3 2))
  in
  check q "path metric is the sum" expected (Measurement.measure w p);
  let c = Measurement.measure_all w fig1_paths in
  check ci "one measurement per path" (List.length fig1_paths) (Array.length c)

let test_random_weights_cover () =
  let rng = Nettomo_util.Prng.create 1 in
  let w = Measurement.random_weights rng Fixtures.fig1 in
  Graph.iter_edges
    (fun e ->
      let x = Measurement.weight w e in
      check cb "positive" true (Rational.sign x > 0))
    Fixtures.fig1

let suite =
  [
    Alcotest.test_case "link space" `Quick test_space;
    Alcotest.test_case "path validation" `Quick test_path_validation;
    Alcotest.test_case "fig1 paths valid" `Quick test_all_fig1_paths_valid;
    Alcotest.test_case "incidence row" `Quick test_incidence_row;
    Alcotest.test_case "fig1 R is invertible (Section 2.3)" `Quick
      test_fig1_matrix_invertible;
    Alcotest.test_case "measure sums link metrics" `Quick test_measure;
    Alcotest.test_case "random weights cover links" `Quick test_random_weights_cover;
  ]
