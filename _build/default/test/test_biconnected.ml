open Nettomo_graph

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let ns = Graph.NodeSet.of_list

(* Brute-force oracle for cut vertices. *)
let cut_vertices_oracle g =
  Graph.fold_nodes
    (fun v acc ->
      let before = Traversal.n_components g in
      let after = Traversal.n_components (Graph.remove_node g v) in
      (* Removing an isolated node drops a component; a cut vertex
         strictly increases the count. *)
      if after > before - (if Graph.degree g v = 0 then 1 else 0) then
        Graph.NodeSet.add v acc
      else acc)
    g Graph.NodeSet.empty

let test_bowtie () =
  let r = Biconnected.decompose Fixtures.bowtie in
  check Fixtures.nodeset_testable "cut vertex is 2" (ns [ 2 ]) r.cut_vertices;
  check ci "two blocks" 2 (List.length r.components);
  List.iter
    (fun (c : Biconnected.component) ->
      check ci "block is a triangle" 3 (Graph.NodeSet.cardinal c.nodes);
      check ci "3 edges" 3 (Graph.EdgeSet.cardinal c.edges))
    r.components

let test_path_blocks () =
  let r = Biconnected.decompose (Fixtures.path_graph 4) in
  check ci "each edge is a block" 3 (List.length r.components);
  check Fixtures.nodeset_testable "inner nodes are cuts" (ns [ 1; 2 ])
    r.cut_vertices

let test_cycle_single_block () =
  let r = Biconnected.decompose (Fixtures.cycle_graph 6) in
  check ci "one block" 1 (List.length r.components);
  check Fixtures.nodeset_testable "no cuts" Graph.NodeSet.empty r.cut_vertices

let test_isolated_node_block () =
  let g = Graph.of_edges ~nodes:[ 9 ] [ (0, 1) ] in
  let r = Biconnected.decompose g in
  check ci "edge block + singleton block" 2 (List.length r.components);
  check cb "singleton block present" true
    (List.exists
       (fun (c : Biconnected.component) ->
         Graph.NodeSet.equal c.nodes (ns [ 9 ]) && Graph.EdgeSet.is_empty c.edges)
       r.components)

let test_fig8_style () =
  (* A triangle, then a bridge, then a square: blocks = triangle, bridge
     edge, square; cuts = bridge endpoints. *)
  let g =
    Graph.of_edges
      [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 3) ]
  in
  let r = Biconnected.decompose g in
  check ci "three blocks" 3 (List.length r.components);
  check Fixtures.nodeset_testable "cuts are 2 and 3" (ns [ 2; 3 ]) r.cut_vertices

let test_is_biconnected () =
  check cb "triangle" true (Biconnected.is_biconnected Fixtures.triangle);
  check cb "cycle" true (Biconnected.is_biconnected (Fixtures.cycle_graph 5));
  check cb "single edge (K2)" false
    (Biconnected.is_biconnected (Graph.of_edges [ (0, 1) ]));
  check cb "bowtie" false (Biconnected.is_biconnected Fixtures.bowtie);
  check cb "path" false (Biconnected.is_biconnected (Fixtures.path_graph 4));
  check cb "disconnected" false
    (Biconnected.is_biconnected (Graph.of_edges [ (0, 1); (2, 3) ]))

let test_is_biconnected_without () =
  (* K4 minus a node is a triangle: biconnected. *)
  check cb "k4 - v" true (Biconnected.is_biconnected_without Fixtures.k4 0);
  (* A cycle minus a node is a path: not biconnected. *)
  check cb "cycle - v" false
    (Biconnected.is_biconnected_without (Fixtures.cycle_graph 5) 0);
  (* Wheel minus the hub is a cycle: biconnected. *)
  check cb "wheel - hub" true (Biconnected.is_biconnected_without Fixtures.wheel5 0)

let blocks_edge_partition g =
  let r = Biconnected.decompose g in
  let all =
    List.fold_left
      (fun acc (c : Biconnected.component) -> Graph.EdgeSet.union acc c.edges)
      Graph.EdgeSet.empty r.components
  in
  let total =
    List.fold_left
      (fun acc (c : Biconnected.component) -> acc + Graph.EdgeSet.cardinal c.edges)
      0 r.components
  in
  Graph.EdgeSet.equal all (Graph.edge_set g) && total = Graph.n_edges g

let prop_cut_vertices_oracle =
  QCheck2.Test.make ~name:"cut vertices match brute-force oracle" ~count:300
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 2 25) (int_range 0 15))
    (fun (seed, n, extra) ->
      let rng = Nettomo_util.Prng.create seed in
      let g = Fixtures.random_connected rng n extra in
      Graph.NodeSet.equal (Biconnected.cut_vertices g) (cut_vertices_oracle g))

let prop_blocks_partition_edges =
  QCheck2.Test.make ~name:"blocks partition the edge set" ~count:300
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 2 25) (int_range 0 15))
    (fun (seed, n, extra) ->
      let rng = Nettomo_util.Prng.create seed in
      blocks_edge_partition (Fixtures.random_connected rng n extra))

let prop_blocks_pairwise_share_at_most_one_node =
  QCheck2.Test.make ~name:"blocks share at most one node" ~count:200
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 2 20) (int_range 0 12))
    (fun (seed, n, extra) ->
      let rng = Nettomo_util.Prng.create seed in
      let g = Fixtures.random_connected rng n extra in
      let r = Biconnected.decompose g in
      let rec pairs = function
        | [] -> true
        | (c : Biconnected.component) :: rest ->
            List.for_all
              (fun (c' : Biconnected.component) ->
                Graph.NodeSet.cardinal (Graph.NodeSet.inter c.nodes c'.nodes) <= 1)
              rest
            && pairs rest
      in
      pairs r.components)

let prop_2vc_matches_flow_oracle =
  QCheck2.Test.make ~name:"biconnectivity matches max-flow oracle" ~count:150
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 3 16) (int_range 0 12))
    (fun (seed, n, extra) ->
      let rng = Nettomo_util.Prng.create seed in
      let g = Fixtures.random_connected rng n extra in
      Biconnected.is_biconnected g = Connectivity.is_k_vertex_connected g 2)

let suite =
  [
    Alcotest.test_case "bowtie decomposition" `Quick test_bowtie;
    Alcotest.test_case "path blocks" `Quick test_path_blocks;
    Alcotest.test_case "cycle single block" `Quick test_cycle_single_block;
    Alcotest.test_case "isolated node block" `Quick test_isolated_node_block;
    Alcotest.test_case "mixed blocks and cuts" `Quick test_fig8_style;
    Alcotest.test_case "is_biconnected" `Quick test_is_biconnected;
    Alcotest.test_case "is_biconnected_without" `Quick test_is_biconnected_without;
    QCheck_alcotest.to_alcotest prop_cut_vertices_oracle;
    QCheck_alcotest.to_alcotest prop_blocks_partition_edges;
    QCheck_alcotest.to_alcotest prop_blocks_pairwise_share_at_most_one_node;
    QCheck_alcotest.to_alcotest prop_2vc_matches_flow_oracle;
  ]
