open Nettomo_graph
open Nettomo_topo
module Prng = Nettomo_util.Prng

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let small_spec =
  {
    Isp.name = "test-as";
    nodes = 120;
    links = 260;
    dangling_frac = 0.3;
    tandem_frac = 0.05;
    paper_r_mmp = 0.4;
  }

let test_exact_counts () =
  let g = Isp.generate (Prng.create 1) small_spec in
  check ci "exact node count" 120 (Graph.n_nodes g);
  check ci "exact link count" 260 (Graph.n_edges g);
  check cb "connected" true (Traversal.is_connected g)

let test_structure () =
  let g = Isp.generate (Prng.create 2) small_spec in
  let s = Stats.summary g in
  (* ≈ 30% dangling + 5% tandem should be visible as low-degree nodes. *)
  check cb "low-degree population present" true (s.Stats.degree_lt3_frac >= 0.30);
  let danglings =
    Graph.fold_nodes (fun v acc -> if Graph.degree g v = 1 then acc + 1 else acc) g 0
  in
  check ci "dangling count matches the fraction" 36 danglings

let test_reproducible () =
  let g1 = Isp.generate (Prng.create 3) small_spec in
  let g2 = Isp.generate (Prng.create 3) small_spec in
  check cb "same seed, same topology" true (Graph.equal g1 g2)

let test_all_specs_generate () =
  (* Every calibrated AS spec must generate with its exact |V| and |L|. *)
  List.iteri
    (fun i spec ->
      let g = Isp.generate (Prng.create (100 + i)) spec in
      check ci (spec.Isp.name ^ " nodes") spec.Isp.nodes (Graph.n_nodes g);
      check ci (spec.Isp.name ^ " links") spec.Isp.links (Graph.n_edges g);
      check cb (spec.Isp.name ^ " connected") true (Traversal.is_connected g))
    (Isp.rocketfuel @ Isp.caida)

let test_find () =
  (match Isp.find "level3" with
  | Some s -> check ci "level3 nodes" 624 s.Isp.nodes
  | None -> Alcotest.fail "level3 spec must exist");
  (match Isp.find "AS8717" with
  | Some s -> check ci "8717 links" 3755 s.Isp.links
  | None -> Alcotest.fail "AS8717 spec must exist");
  check cb "unknown name" true (Isp.find "nonexistent-as" = None)

let test_counts () =
  check ci "nine rocketfuel ASes" 9 (List.length Isp.rocketfuel);
  check ci "five caida ASes" 5 (List.length Isp.caida)

let test_invalid_spec () =
  check cb "tiny spec rejected" true
    (try
       ignore
         (Isp.generate (Prng.create 1)
            { small_spec with Isp.nodes = 4 });
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "exact node/link counts" `Quick test_exact_counts;
    Alcotest.test_case "dangling/tandem structure" `Quick test_structure;
    Alcotest.test_case "reproducible" `Quick test_reproducible;
    Alcotest.test_case "all AS specs generate" `Slow test_all_specs_generate;
    Alcotest.test_case "find by name" `Quick test_find;
    Alcotest.test_case "table sizes" `Quick test_counts;
    Alcotest.test_case "invalid specs rejected" `Quick test_invalid_spec;
  ]
