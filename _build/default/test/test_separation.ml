open Nettomo_graph

let check = Alcotest.check
let cb = Alcotest.bool

(* Brute-force oracle for minimal 2-vertex cuts on a connected graph. *)
let cut_pairs_oracle g =
  let cuts = Biconnected.cut_vertices g in
  let nodes = Graph.node_array g in
  let acc = ref Graph.EdgeSet.empty in
  Array.iteri
    (fun i u ->
      Array.iteri
        (fun j v ->
          if
            j > i
            && (not (Graph.NodeSet.mem u cuts))
            && (not (Graph.NodeSet.mem v cuts))
            && Graph.n_nodes g > 3
            &&
            let g' = Graph.remove_node (Graph.remove_node g u) v in
            not (Traversal.is_connected g')
          then acc := Graph.EdgeSet.add (Graph.edge u v) !acc)
        nodes)
    nodes;
  !acc

(* Brute-force 3-vertex-connectivity. *)
let is_3vc_oracle g =
  Graph.n_nodes g >= 4
  && Traversal.is_connected g
  && Graph.NodeSet.is_empty (Biconnected.cut_vertices g)
  && Graph.EdgeSet.is_empty (cut_pairs_oracle g)

let test_square_pairs () =
  (* In C4, the two diagonals are the separation pairs. *)
  check
    (Alcotest.list Fixtures.edge_testable)
    "square diagonals"
    [ (0, 2); (1, 3) ]
    (Separation.cut_pairs Fixtures.square)

let test_k4_no_pairs () =
  check (Alcotest.list Fixtures.edge_testable) "k4 has no pairs" []
    (Separation.cut_pairs Fixtures.k4)

let test_two_k4_shared_pair () =
  check
    (Alcotest.list Fixtures.edge_testable)
    "two K4s share pair {2,3}"
    [ (2, 3) ]
    (Separation.cut_pairs Fixtures.two_k4_by_pair)

let test_cut_vertices_excluded () =
  (* Bowtie: node 2 is a cut vertex, so pairs through it are not minimal;
     and removing any two non-cut vertices keeps it connected. *)
  check (Alcotest.list Fixtures.edge_testable) "bowtie has no minimal pairs" []
    (Separation.cut_pairs Fixtures.bowtie)

let test_first_cut_pair () =
  check cb "square has a pair" true
    (Separation.first_cut_pair Fixtures.square <> None);
  check cb "k4 has none" true (Separation.first_cut_pair Fixtures.k4 = None);
  check cb "petersen has none" true
    (Separation.first_cut_pair Fixtures.petersen = None)

let test_cut_pair_members () =
  check Fixtures.nodeset_testable "square members"
    (Graph.NodeSet.of_list [ 0; 1; 2; 3 ])
    (Separation.cut_pair_members Fixtures.square);
  check Fixtures.nodeset_testable "two K4 members"
    (Graph.NodeSet.of_list [ 2; 3 ])
    (Separation.cut_pair_members Fixtures.two_k4_by_pair)

let test_is_3vc_known () =
  check cb "k4" true (Separation.is_three_vertex_connected Fixtures.k4);
  check cb "k5" true (Separation.is_three_vertex_connected Fixtures.k5);
  check cb "wheel" true (Separation.is_three_vertex_connected Fixtures.wheel5);
  check cb "petersen" true (Separation.is_three_vertex_connected Fixtures.petersen);
  check cb "triangle (too small)" false
    (Separation.is_three_vertex_connected Fixtures.triangle);
  check cb "square" false (Separation.is_three_vertex_connected Fixtures.square);
  check cb "cycle" false
    (Separation.is_three_vertex_connected (Fixtures.cycle_graph 8));
  check cb "bowtie" false (Separation.is_three_vertex_connected Fixtures.bowtie);
  check cb "two K4s" false
    (Separation.is_three_vertex_connected Fixtures.two_k4_by_pair);
  (* Wheel minus a spoke: rim node of degree 2 gives a separation pair. *)
  check cb "wheel minus spoke" false
    (Separation.is_three_vertex_connected (Graph.remove_edge Fixtures.wheel5 0 3))

let prop_cut_pairs_match_oracle =
  QCheck2.Test.make ~name:"cut pairs match brute-force oracle" ~count:250
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 4 18) (int_range 0 20))
    (fun (seed, n, extra) ->
      let rng = Nettomo_util.Prng.create seed in
      let g = Fixtures.random_connected rng n extra in
      Graph.EdgeSet.equal
        (Graph.EdgeSet.of_list (Separation.cut_pairs g))
        (cut_pairs_oracle g))

let prop_3vc_matches_oracle =
  QCheck2.Test.make ~name:"3-vertex-connectivity matches oracle" ~count:250
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 4 16) (int_range 0 30))
    (fun (seed, n, extra) ->
      let rng = Nettomo_util.Prng.create seed in
      let g = Fixtures.random_connected rng n extra in
      Separation.is_three_vertex_connected g = is_3vc_oracle g)

let prop_3vc_matches_flow_oracle =
  QCheck2.Test.make ~name:"3-vertex-connectivity matches max-flow Menger"
    ~count:150
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 4 14) (int_range 0 25))
    (fun (seed, n, extra) ->
      let rng = Nettomo_util.Prng.create seed in
      let g = Fixtures.random_connected rng n extra in
      Separation.is_three_vertex_connected g = Connectivity.is_k_vertex_connected g 3)

let suite =
  [
    Alcotest.test_case "square diagonals" `Quick test_square_pairs;
    Alcotest.test_case "k4 has no pairs" `Quick test_k4_no_pairs;
    Alcotest.test_case "shared pair of two K4s" `Quick test_two_k4_shared_pair;
    Alcotest.test_case "cut vertices excluded (minimality)" `Quick
      test_cut_vertices_excluded;
    Alcotest.test_case "first_cut_pair" `Quick test_first_cut_pair;
    Alcotest.test_case "cut_pair_members" `Quick test_cut_pair_members;
    Alcotest.test_case "3-vertex-connectivity on known graphs" `Quick
      test_is_3vc_known;
    QCheck_alcotest.to_alcotest prop_cut_pairs_match_oracle;
    QCheck_alcotest.to_alcotest prop_3vc_matches_oracle;
    QCheck_alcotest.to_alcotest prop_3vc_matches_flow_oracle;
  ]
