open Nettomo_core
module Prng = Nettomo_util.Prng

let check = Alcotest.check
let cb = Alcotest.bool

let fig1 = Paper.fig1

let test_zero_noise_is_exact () =
  let rng = Prng.create 31 in
  let truth = Measurement.random_weights ~lo:1 ~hi:40 rng (Net.graph fig1) in
  match Noisy.recover ~rng fig1 truth ~sigma:0.0 ~repetitions:1 with
  | Some estimates ->
      check (Alcotest.float 1e-6) "zero noise, zero error" 0.0
        (Noisy.max_abs_error estimates)
  | None -> Alcotest.fail "fig1 is identifiable"

let test_noise_bounded () =
  let rng = Prng.create 32 in
  let truth = Measurement.random_weights ~lo:10 ~hi:50 rng (Net.graph fig1) in
  match Noisy.recover ~rng fig1 truth ~sigma:0.5 ~repetitions:400 with
  | Some estimates ->
      (* With 400 repetitions the per-path std-err is 0.5/20 = 0.025;
         after solving, errors stay well below one metric unit. *)
      check cb
        (Printf.sprintf "max error small (%.3f)" (Noisy.max_abs_error estimates))
        true
        (Noisy.max_abs_error estimates < 1.0);
      check cb "rmse below max" true (Noisy.rmse estimates <= Noisy.max_abs_error estimates +. 1e-12)
  | None -> Alcotest.fail "fig1 is identifiable"

let test_averaging_improves () =
  (* The error with many repetitions should generally beat the error
     with one; compare averaged over several seeds to avoid flakes. *)
  let avg_error repetitions =
    let total = ref 0.0 in
    for seed = 1 to 5 do
      let rng = Prng.create (100 + seed) in
      let truth = Measurement.random_weights ~lo:10 ~hi:50 rng (Net.graph fig1) in
      match Noisy.recover ~rng fig1 truth ~sigma:1.0 ~repetitions with
      | Some estimates -> total := !total +. Noisy.rmse estimates
      | None -> Alcotest.fail "identifiable"
    done;
    !total /. 5.0
  in
  let coarse = avg_error 1 and fine = avg_error 200 in
  check cb
    (Printf.sprintf "averaging reduces error (%.3f -> %.3f)" coarse fine)
    true (fine < coarse)

let test_unidentifiable_refused () =
  let rng = Prng.create 33 in
  let truth = Measurement.random_weights rng (Net.graph fig1) in
  let two = Net.with_monitors fig1 [ 0; 1 ] in
  check cb "two monitors refused" true
    (Noisy.recover ~rng two truth ~sigma:0.1 ~repetitions:3 = None)

let test_measure_noise_distribution () =
  (* Measurements of a known path must center on the true metric. *)
  let rng = Prng.create 34 in
  let truth = Measurement.random_weights ~lo:10 ~hi:10 rng (Net.graph fig1) in
  let path = [ 0; 3; 2 ] in
  let true_value = 20.0 in
  let n = 2000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Noisy.measure rng truth ~sigma:2.0 path
  done;
  let mean = !acc /. float_of_int n in
  check cb
    (Printf.sprintf "sample mean near truth (%.3f)" mean)
    true
    (Float.abs (mean -. true_value) < 0.2)

let test_least_squares_zero_noise () =
  let rng = Prng.create 36 in
  let truth = Measurement.random_weights ~lo:1 ~hi:40 rng (Net.graph fig1) in
  match
    Noisy.recover_least_squares ~rng ~extra_paths:10 fig1 truth ~sigma:0.0
      ~repetitions:1
  with
  | Some estimates ->
      check (Alcotest.float 1e-6) "LS exact without noise" 0.0
        (Noisy.max_abs_error estimates)
  | None -> Alcotest.fail "identifiable"

let test_least_squares_beats_square_on_average () =
  (* At equal repetitions, 25 extra measurement rows should reduce the
     error; average over seeds to avoid flakes. *)
  let avg f =
    let total = ref 0.0 in
    for seed = 1 to 6 do
      let rng = Prng.create (300 + seed) in
      let truth = Measurement.random_weights ~lo:10 ~hi:50 rng (Net.graph fig1) in
      match f rng truth with
      | Some est -> total := !total +. Noisy.rmse est
      | None -> Alcotest.fail "identifiable"
    done;
    !total /. 6.0
  in
  let square =
    avg (fun rng truth -> Noisy.recover ~rng fig1 truth ~sigma:1.0 ~repetitions:5)
  in
  let ls =
    avg (fun rng truth ->
        Noisy.recover_least_squares ~rng ~extra_paths:25 fig1 truth ~sigma:1.0
          ~repetitions:5)
  in
  check cb
    (Printf.sprintf "LS improves error (%.3f -> %.3f)" square ls)
    true (ls < square)

let test_invalid_repetitions () =
  let rng = Prng.create 35 in
  let truth = Measurement.random_weights rng (Net.graph fig1) in
  Alcotest.check_raises "zero repetitions"
    (Invalid_argument "Noisy.measure_averaged: repetitions must be positive")
    (fun () ->
      ignore (Noisy.measure_averaged rng truth ~sigma:1.0 ~repetitions:0 [ 0; 3; 2 ]))

let suite =
  [
    Alcotest.test_case "zero noise is exact" `Quick test_zero_noise_is_exact;
    Alcotest.test_case "error bounded under noise" `Quick test_noise_bounded;
    Alcotest.test_case "averaging improves accuracy" `Quick test_averaging_improves;
    Alcotest.test_case "unidentifiable refused" `Quick test_unidentifiable_refused;
    Alcotest.test_case "noise centers on the mean" `Quick
      test_measure_noise_distribution;
    Alcotest.test_case "least squares exact without noise" `Quick
      test_least_squares_zero_noise;
    Alcotest.test_case "least squares beats square solve" `Quick
      test_least_squares_beats_square_on_average;
    Alcotest.test_case "invalid repetitions" `Quick test_invalid_repetitions;
  ]
