open Nettomo_graph

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let ns = Graph.NodeSet.of_list

let test_reachable () =
  let g = Graph.of_edges ~nodes:[ 9 ] [ (0, 1); (1, 2); (3, 4) ] in
  check Fixtures.nodeset_testable "component of 0" (ns [ 0; 1; 2 ])
    (Traversal.reachable g 0);
  check Fixtures.nodeset_testable "component of 4" (ns [ 3; 4 ])
    (Traversal.reachable g 4);
  check Fixtures.nodeset_testable "isolated node" (ns [ 9 ])
    (Traversal.reachable g 9)

let test_reachable_avoid_node () =
  let g = Fixtures.path_graph 5 in
  check Fixtures.nodeset_testable "path cut at 2" (ns [ 0; 1 ])
    (Traversal.reachable ~avoid_nodes:(ns [ 2 ]) g 0)

let test_reachable_avoid_edge () =
  let g = Fixtures.path_graph 5 in
  check Fixtures.nodeset_testable "path cut at edge (2,3)" (ns [ 0; 1; 2 ])
    (Traversal.reachable ~avoid_edge:(Graph.edge 3 2) g 0);
  (* On a cycle, removing one edge keeps everything reachable. *)
  check Fixtures.nodeset_testable "cycle minus edge stays connected"
    (ns [ 0; 1; 2; 3; 4 ])
    (Traversal.reachable ~avoid_edge:(Graph.edge 0 1) (Fixtures.cycle_graph 5) 0)

let test_components () =
  let g = Graph.of_edges ~nodes:[ 7 ] [ (0, 1); (2, 3) ] in
  let comps = Traversal.components g in
  check ci "three components" 3 (List.length comps);
  check ci "count matches" 3 (Traversal.n_components g)

let test_components_avoiding () =
  let comps =
    Traversal.components ~avoid_nodes:(ns [ 2 ]) (Fixtures.path_graph 5)
  in
  check ci "two pieces" 2 (List.length comps)

let test_is_connected () =
  check cb "empty connected" true (Traversal.is_connected Graph.empty);
  check cb "singleton connected" true
    (Traversal.is_connected (Graph.add_node Graph.empty 0));
  check cb "path connected" true (Traversal.is_connected (Fixtures.path_graph 6));
  check cb "two parts" false
    (Traversal.is_connected (Graph.of_edges [ (0, 1); (2, 3) ]));
  check cb "path minus middle node" false
    (Traversal.is_connected ~avoid_nodes:(ns [ 2 ]) (Fixtures.path_graph 5));
  check cb "path minus middle edge" false
    (Traversal.is_connected ~avoid_edge:(2, 3) (Fixtures.path_graph 5));
  check cb "cycle minus edge" true
    (Traversal.is_connected ~avoid_edge:(0, 1) (Fixtures.cycle_graph 5))

let test_bfs_distances () =
  let d = Traversal.bfs_distances (Fixtures.cycle_graph 6) 0 in
  check ci "dist to self" 0 (Graph.NodeMap.find 0 d);
  check ci "dist to 1" 1 (Graph.NodeMap.find 1 d);
  check ci "dist to 3 (opposite)" 3 (Graph.NodeMap.find 3 d);
  check ci "dist to 5 (other way)" 1 (Graph.NodeMap.find 5 d)

let test_bfs_unreachable_absent () =
  let g = Graph.of_edges [ (0, 1); (2, 3) ] in
  let d = Traversal.bfs_distances g 0 in
  check cb "unreachable absent from map" true
    (not (Graph.NodeMap.mem 2 d))

let test_shortest_path () =
  let g = Fixtures.cycle_graph 6 in
  (match Traversal.shortest_path g 0 2 with
  | Some p -> check (Alcotest.list ci) "path 0-1-2" [ 0; 1; 2 ] p
  | None -> Alcotest.fail "expected path");
  (match Traversal.shortest_path g 0 0 with
  | Some p -> check (Alcotest.list ci) "trivial path" [ 0 ] p
  | None -> Alcotest.fail "expected trivial path");
  let g2 = Graph.of_edges [ (0, 1); (2, 3) ] in
  check cb "unreachable" true (Traversal.shortest_path g2 0 3 = None)

let test_spanning_tree () =
  let g = Fixtures.k4 in
  let t = Traversal.spanning_tree g in
  check ci "tree has n-1 edges" 3 (Graph.EdgeSet.cardinal t);
  let tree_graph =
    Graph.EdgeSet.fold (fun (u, v) acc -> Graph.add_edge acc u v) t Graph.empty
  in
  check cb "tree connected" true (Traversal.is_connected tree_graph);
  check ci "tree covers all nodes" 4 (Graph.n_nodes tree_graph)

let test_spanning_forest () =
  let g = Graph.of_edges [ (0, 1); (1, 2); (0, 2); (5, 6) ] in
  let t = Traversal.spanning_tree g in
  check ci "forest edges = n - #components" 3 (Graph.EdgeSet.cardinal t)

(* Property: components partition the node set. *)
let prop_components_partition =
  QCheck2.Test.make ~name:"components partition nodes" ~count:200
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 30))
    (fun (seed, n) ->
      let rng = Nettomo_util.Prng.create seed in
      (* Possibly disconnected: take a connected graph and delete a node's
         edges by removing a random node. *)
      let g = Fixtures.random_connected rng n (n / 3) in
      let g = if n > 2 then Graph.remove_node g (Nettomo_util.Prng.int rng n) else g in
      let comps = Traversal.components g in
      let total = List.fold_left (fun a c -> a + Graph.NodeSet.cardinal c) 0 comps in
      let union =
        List.fold_left Graph.NodeSet.union Graph.NodeSet.empty comps
      in
      total = Graph.n_nodes g && Graph.NodeSet.equal union (Graph.node_set g))

(* Property: spanning tree always has n - c edges. *)
let prop_spanning_tree_size =
  QCheck2.Test.make ~name:"spanning forest size" ~count:200
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 2 40))
    (fun (seed, n) ->
      let rng = Nettomo_util.Prng.create seed in
      let g = Fixtures.random_connected rng n (n / 2) in
      Graph.EdgeSet.cardinal (Traversal.spanning_tree g)
      = Graph.n_nodes g - Traversal.n_components g)

let suite =
  [
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "reachable avoiding node" `Quick test_reachable_avoid_node;
    Alcotest.test_case "reachable avoiding edge" `Quick test_reachable_avoid_edge;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "components avoiding nodes" `Quick test_components_avoiding;
    Alcotest.test_case "is_connected variants" `Quick test_is_connected;
    Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
    Alcotest.test_case "bfs omits unreachable" `Quick test_bfs_unreachable_absent;
    Alcotest.test_case "shortest path" `Quick test_shortest_path;
    Alcotest.test_case "spanning tree" `Quick test_spanning_tree;
    Alcotest.test_case "spanning forest" `Quick test_spanning_forest;
    QCheck_alcotest.to_alcotest prop_components_partition;
    QCheck_alcotest.to_alcotest prop_spanning_tree_size;
  ]
