open Nettomo_graph
open Nettomo_core

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let test_extend_structure () =
  let net = Net.create Fixtures.fig1 ~monitors:[ 0; 1; 2 ] in
  let ext = Extended.extend net in
  let g = ext.Extended.graph in
  check ci "two extra nodes" (Graph.n_nodes Fixtures.fig1 + 2) (Graph.n_nodes g);
  check ci "2κ extra links" (Graph.n_edges Fixtures.fig1 + 6) (Graph.n_edges g);
  check cb "fresh ids" true
    (not (Graph.mem_node Fixtures.fig1 ext.Extended.vm1)
    && not (Graph.mem_node Fixtures.fig1 ext.Extended.vm2));
  check cb "no virtual-virtual link" false
    (Graph.mem_edge g ext.Extended.vm1 ext.Extended.vm2);
  List.iter
    (fun m ->
      check cb "vm1 linked to every monitor" true (Graph.mem_edge g ext.Extended.vm1 m);
      check cb "vm2 linked to every monitor" true (Graph.mem_edge g ext.Extended.vm2 m))
    [ 0; 1; 2 ];
  check ci "vm degree = κ" 3 (Graph.degree g ext.Extended.vm1)

let test_original_untouched () =
  let net = Net.create Fixtures.fig1 ~monitors:[ 0; 1; 2 ] in
  let ext = Extended.extend net in
  Graph.iter_edges
    (fun (u, v) ->
      check cb "original link kept" true (Graph.mem_edge ext.Extended.graph u v))
    Fixtures.fig1

let test_as_two_monitor_net () =
  let net = Net.create Fixtures.fig1 ~monitors:[ 0; 1; 2 ] in
  let two = Extended.as_two_monitor_net net in
  check ci "two monitors" 2 (Net.kappa two);
  (* G is the interior graph of Gex (Section 6). *)
  let h = Interior.interior_graph two in
  check cb "interior graph of Gex is G" true (Graph.equal h Fixtures.fig1)

let test_no_monitors_rejected () =
  Alcotest.check_raises "no monitors" (Invalid_argument "Extended.extend: no monitors")
    (fun () -> ignore (Extended.extend (Net.create Fixtures.fig1 ~monitors:[])))

let suite =
  [
    Alcotest.test_case "extended graph structure" `Quick test_extend_structure;
    Alcotest.test_case "original links kept" `Quick test_original_untouched;
    Alcotest.test_case "G is interior graph of Gex" `Quick test_as_two_monitor_net;
    Alcotest.test_case "rejects empty monitor set" `Quick test_no_monitors_rejected;
  ]
