lib/util/prng.mli:
