(** Disjoint-set forest with union by rank and path compression.

    Elements are integers in [\[0, n)]. Used by the topology generators to
    maintain connectivity while wiring random graphs. *)

type t

val create : int -> t
(** [create n] builds [n] singleton sets [{0}, …, {n-1}]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the sets of [a] and [b]. Returns [true] if they
    were previously distinct. *)

val same : t -> int -> int -> bool
(** Whether the two elements are currently in the same set. *)

val count : t -> int
(** Number of disjoint sets currently alive. *)
