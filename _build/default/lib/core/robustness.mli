(** Robustness of identifiability to failures.

    Monitoring is deployed precisely to survive trouble, so an operator
    needs to know {e which failures silently break the deployment}: after
    a link is withdrawn or a router goes down, does the monitor placement
    still identify every remaining link metric?

    A failed link is removed from the topology; a failed node is removed
    together with its incident links (a failed monitor also stops
    measuring). Identifiability of the surviving network is decided with
    the Section 7.1 topological tests. The surviving network can be
    disconnected, in which case it is unidentifiable whenever any
    surviving component has links but fewer than 2 monitors. *)

open Nettomo_graph

val survives_link_failure : Net.t -> Graph.edge -> bool
(** Whether the network minus the given link is still fully
    identifiable with the same monitors. Raises [Invalid_argument] if
    the link is absent. *)

val survives_node_failure : Net.t -> Graph.node -> bool
(** Whether the network minus the given node (monitor or not) is still
    fully identifiable with the surviving monitors. Raises
    [Invalid_argument] if the node is absent. *)

type report = {
  critical_links : Graph.EdgeSet.t;
      (** links whose failure breaks identifiability *)
  critical_nodes : Graph.NodeSet.t;
      (** nodes whose failure breaks identifiability *)
  total_links : int;
  total_nodes : int;
}

val analyze : Net.t -> report
(** Exhaustive single-failure sweep. *)

val fraction_critical_links : report -> float
val fraction_critical_nodes : report -> float
val pp : Format.formatter -> report -> unit
