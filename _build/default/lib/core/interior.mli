(** Interior/exterior decomposition under a monitor placement
    (Definition 1 of the paper).

    The {e interior graph} [H] is what remains after deleting the
    monitors and their incident links; links incident to a monitor are
    {e exterior}, all others {e interior}. With two monitors, exterior
    links are never identifiable (Theorem 3.1 / Corollary 4.1) while the
    interior links are identifiable under the conditions of
    Theorem 3.2. *)

open Nettomo_graph

val interior_graph : Net.t -> Graph.t
(** [H = G - M] for the network's monitor set [M]. *)

val exterior_links : Net.t -> Graph.EdgeSet.t
val interior_links : Net.t -> Graph.EdgeSet.t

val decompose_two : Net.t -> Net.t list
(** For a 2-monitor network whose interior graph has components
    [H₁ … H_k]: the sub-networks [Gᵢ = Hᵢ + m₁ + m₂] of Section 5, each
    carrying both monitors. A direct [m₁m₂] link is excluded from every
    [Gᵢ]. Components consisting of a single interior node are included
    (their [Gᵢ] has no interior links to identify but still exists).
    Raises [Invalid_argument] unless the network has exactly two
    monitors. *)
