(** Random Monitor Placement — the baseline of Section 7.3.

    RMP draws κ monitors uniformly at random and tests identifiability
    with the Section 7.1 test. It cannot guarantee identifiability; its
    quality is the fraction of Monte-Carlo draws that happen to achieve
    it, which is what Figs. 9–12 plot against κ. *)

open Nettomo_graph

val place : Nettomo_util.Prng.t -> Graph.t -> kappa:int -> Graph.NodeSet.t
(** κ distinct uniform nodes. Raises [Invalid_argument] if κ exceeds the
    node count or is negative. *)

val trial : Nettomo_util.Prng.t -> Graph.t -> kappa:int -> bool
(** One Monte-Carlo trial: place κ random monitors and test whether the
    whole network is identifiable. *)

val success_fraction :
  Nettomo_util.Prng.t -> Graph.t -> kappa:int -> runs:int -> float
(** Fraction of [runs] independent trials achieving identifiability. *)
