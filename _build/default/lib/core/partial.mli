(** Partial identifiability under an arbitrary (possibly insufficient)
    monitor placement.

    The paper leaves "the achievable number of identifiable links when
    monitor selection is constrained" as future work (Section 7.3.2,
    footnote 17); this module provides the natural rank-based answer: a
    link is identifiable iff its unit vector lies in the row space of the
    measurement matrix over all measurable simple paths.

    Two evaluation modes:
    - {e exact}: enumerate all simple paths between monitor pairs —
      exponential, only for small networks;
    - {e sampled}: grow a maximal independent path basis with the layered
      search of {!Solver}. The basis is maximal with high probability but
      not certainly, so the result is a {e lower bound} on the
      identifiable set (links reported identifiable always are — witness
      paths exist — while a link could in rare cases be missed). *)

open Nettomo_graph

type mode = Exact | Sampled

type report = {
  mode : mode;
  rank : int;  (** independent measurable paths found *)
  identifiable : Graph.EdgeSet.t;
  unidentifiable : Graph.EdgeSet.t;
}

val analyze :
  ?rng:Nettomo_util.Prng.t ->
  ?exact_node_limit:int ->
  Net.t ->
  report
(** Exact below [exact_node_limit] nodes (default 12), sampled above.
    Requires at least two monitors. *)

val coverage : report -> float
(** Fraction of links identifiable, in [\[0, 1\]]. *)

val pp : Format.formatter -> report -> unit
