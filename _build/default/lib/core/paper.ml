open Nettomo_graph

let fig1_labels =
  Graph.NodeMap.of_seq
    (List.to_seq
       [ (0, "m1"); (1, "m2"); (2, "m3"); (3, "a"); (4, "b"); (5, "c"); (6, "x") ])

(* Links of Fig. 1 in the paper's order l1 … l11. *)
let fig1_links =
  [
    (0, 4);  (* l1 = m1-b *)
    (0, 3);  (* l2 = m1-a *)
    (3, 4);  (* l3 = a-b *)
    (4, 5);  (* l4 = b-c *)
    (3, 5);  (* l5 = a-c *)
    (3, 2);  (* l6 = a-m3 *)
    (5, 2);  (* l7 = c-m3 *)
    (5, 6);  (* l8 = c-x *)
    (2, 1);  (* l9 = m3-m2 *)
    (6, 2);  (* l10 = x-m3 *)
    (6, 1);  (* l11 = x-m2 *)
  ]

let fig1 =
  Net.create ~labels:fig1_labels (Graph.of_edges fig1_links) ~monitors:[ 0; 1; 2 ]

let fig1_link_names =
  List.to_seq fig1_links
  |> Seq.mapi (fun i (u, v) -> (Graph.edge u v, Printf.sprintf "l%d" (i + 1)))
  |> Graph.EdgeMap.of_seq

let fig1_paths =
  [
    [ 0; 4; 5; 6; 1 ];   (* m1→m2: l1 l4 l8 l11 *)
    [ 0; 4; 5; 2 ];      (* m1→m3: l1 l4 l7 *)
    [ 0; 3; 4; 5; 2 ];   (* l2 l3 l4 l7 *)
    [ 0; 3; 5; 6; 2 ];   (* l2 l5 l8 l10 *)
    [ 0; 3; 2 ];         (* l2 l6 *)
    [ 0; 3; 5; 2 ];      (* l2 l5 l7 *)
    [ 0; 4; 3; 2 ];      (* l1 l3 l6 *)
    [ 0; 4; 5; 3; 2 ];   (* l1 l4 l5 l6 *)
    [ 2; 1 ];            (* m3→m2: l9 *)
    [ 2; 6; 1 ];         (* l10 l11 *)
    [ 2; 3; 5; 6; 1 ];   (* l6 l5 l8 l11 *)
  ]

let fig6_labels =
  Graph.NodeMap.of_seq
    (List.to_seq
       [ (0, "m1"); (6, "m2"); (1, "v1"); (2, "v2"); (3, "v3"); (4, "v4"); (5, "v5") ])

let fig6 =
  Net.create ~labels:fig6_labels
    (Graph.of_edges
       [ (0, 1); (0, 4); (1, 2); (2, 3); (1, 3); (3, 4); (2, 5); (4, 5); (2, 6); (5, 6) ])
    ~monitors:[ 0; 6 ]

let fig8_like =
  Graph.of_edges
    [
      (* K4 X on 0..3 *)
      (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3);
      (* tandem chain to the wheel: 3 - 20 - 21 - 11 *)
      (3, 20); (20, 21); (21, 11);
      (* wheel Z: hub 10, rim 11 12 13 14 16 *)
      (10, 11); (10, 12); (10, 13); (10, 14); (10, 16);
      (11, 12); (12, 13); (13, 14); (14, 16); (16, 11);
      (* tandem chain to the fused K4s: 2 - 15 - 4 *)
      (2, 15); (15, 4);
      (* fused K4s Y: {4,5,6,7} and {6,7,8,9} sharing link 6-7 *)
      (4, 5); (4, 6); (4, 7); (5, 6); (5, 7); (6, 7);
      (6, 8); (6, 9); (7, 8); (7, 9); (8, 9);
      (* dangling chain at 1: 1 - 17 - 18 - 19 *)
      (1, 17); (17, 18); (18, 19);
    ]
