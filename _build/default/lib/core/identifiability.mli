(** Identifiability tests — the paper's main results (Sections 3–7.1).

    Terminology: a link is {e identifiable} if its metric is uniquely
    determined by end-to-end measurements over simple paths between
    monitors; the network is identifiable if every link is. Via the
    linear system [R·w = c], the network is identifiable iff [rank R]
    over all measurable simple paths equals the number of links, and a
    single link is identifiable iff its unit vector lies in the row space
    of [R].

    The topological tests below decide these properties without
    enumerating paths:
    - {!network_identifiable} implements Theorem 3.1 (two monitors never
      suffice beyond a single link) and Theorem 3.3 (κ ≥ 3 monitors
      suffice iff the extended graph is 3-vertex-connected);
    - {!interior_identifiable_two} implements Theorem 3.2 for the
      interior graph under two monitors.

    The brute-force functions compute the ground truth by exact rank
    over every simple path; they are exponential and exist to validate
    the topological conditions and to answer per-link questions on small
    networks. *)

open Nettomo_graph

val network_identifiable : Net.t -> bool
(** Whether every link metric is identifiable. Requires a connected
    graph with at least one link; raises [Invalid_argument] otherwise.
    With κ < 2 the answer is always [false]; with κ = 2 it is [true]
    only for the single-link network whose endpoints are the two
    monitors (Theorem 3.1); with κ ≥ 3 it is Theorem 3.3's condition on
    the extended graph. *)

type two_monitor_failure =
  | Condition1 of Graph.edge
      (** [G - l] is not 2-edge-connected for this interior link [l]. *)
  | Condition2  (** [G + m₁m₂] is not 3-vertex-connected. *)

val interior_identifiable_two : Net.t -> bool
(** Theorem 3.2: with exactly two monitors, whether every interior link
    is identifiable. A direct monitor-monitor link is allowed (it is
    identifiable by a one-hop measurement and ignored, per Section 4);
    a disconnected interior graph is handled by decomposing into the
    [Gᵢ] sub-networks of Section 5 and testing each. Networks with no
    interior links are vacuously identifiable. Raises
    [Invalid_argument] unless the network is connected with exactly two
    monitors. *)

val interior_two_failures : Net.t -> two_monitor_failure list
(** The witnesses for which {!interior_identifiable_two} fails: failing
    interior links for Condition ① and/or [Condition2], across the
    [Gᵢ] decomposition. Empty iff identifiable. *)

val pp_failure : Format.formatter -> two_monitor_failure -> unit

(** {1 Ground truth by exact rank} *)

val measurement_basis : ?limit:int -> Net.t -> Nettomo_linalg.Basis.t
(** Row-space basis of the measurement matrix over {e all} simple paths
    between all monitor pairs. Exponential; [limit] (default 200,000)
    bounds the number of paths per monitor pair and raises
    [Paths.Limit_exceeded] beyond it. *)

val identifiable_links_bruteforce : ?limit:int -> Net.t -> Graph.EdgeSet.t
(** Exactly the identifiable links, by row-space membership of each unit
    vector. *)

val network_identifiable_bruteforce : ?limit:int -> Net.t -> bool
