(** The linear-algebraic measurement model of Section 2.1.

    Link metrics are additive and constant; a measurement path [P] is a
    simple path between two distinct monitors and observes
    [W_P = Σ_{l ∈ P} W_l]. Stacking the 0/1 link-incidence rows of the
    measured paths gives the measurement matrix [R] of the linear system
    [R·w = c]. *)

open Nettomo_graph
open Nettomo_linalg

(** Fixed enumeration of a graph's links, giving each link its column in
    the measurement matrix. *)
type space

val space : Graph.t -> space
val n_links : space -> int
val link_order : space -> Graph.edge array
(** Column [j] of the measurement matrix corresponds to
    [(link_order s).(j)]. *)

val column : space -> Graph.edge -> int
(** Raises [Not_found] for a link outside the space. *)

val is_measurement_path : Net.t -> Paths.path -> bool
(** A valid measurement path: a simple path of the network's graph whose
    two endpoints are distinct monitors. Interior nodes need not avoid
    monitors, but the paper's model forbids repeated monitors only to
    exclude cycles — simple paths already guarantee that. *)

val check_measurement_path : Net.t -> Paths.path -> (unit, string) result

val incidence_row : space -> Paths.path -> Rational.t array
(** 0/1 row of the path over the link columns. *)

val matrix : space -> Paths.path list -> Matrix.t
(** Measurement matrix [R] (paths × links). Raises [Invalid_argument] on
    an empty path list. *)

type weights = Rational.t Graph.EdgeMap.t

val random_weights :
  ?lo:int -> ?hi:int -> Nettomo_util.Prng.t -> Graph.t -> weights
(** Uniform integer metrics in [\[lo, hi\]] (defaults 1 and 100) — e.g.
    per-link delays. *)

val weight : weights -> Graph.edge -> Rational.t
(** Raises [Invalid_argument] for a link without a metric. *)

val measure : weights -> Paths.path -> Rational.t
(** End-to-end sum metric [W_P] of one path. *)

val measure_all : weights -> Paths.path list -> Rational.t array
(** The measurement vector [c]. *)
