(** The example networks used throughout the paper, pre-built.

    These serve as documentation, test fixtures and demo inputs:
    - {!fig1}: the Section 2.3 running example (7 nodes, 11 links, three
      monitors) together with the eleven measurement paths whose matrix
      is invertible;
    - {!fig6}: the Section 5 network whose interior graph is fully
      identifiable with two monitors;
    - {!fig8_like}: a 22-node composition in the spirit of the Section
      7.2 example, exercising all four MMP placement rules. *)

open Nettomo_graph

val fig1 : Net.t
(** Monitors m1 = 0, m2 = 1, m3 = 2; interior a = 3, b = 4, c = 5,
    x = 6. Labels are attached ("m1", "a", …). *)

val fig1_link_names : string Graph.EdgeMap.t
(** The paper's link labels l1 … l11. *)

val fig1_paths : Paths.path list
(** The eleven measurement paths of Section 2.3, in the paper's order
    (one m1→m2, seven m1→m3, three m3→m2). Their measurement matrix has
    full rank 11. *)

val fig6 : Net.t
(** Monitors m1 = 0, m2 = 6; interior v1 … v5 = 1 … 5. *)

val fig8_like : Graph.t
(** 22 nodes, 35 links: a K4 with three attachment points, a wheel, two
    fused K4s behind one cut vertex, two tandem chains and a dangling
    chain. MMP places 10 monitors on it, exercising rules (i)–(iv). *)
