(** Monitor placement under {e uncontrollable} routing — the contrasting
    regime of the paper's related work (references [22, 23]).

    The paper's MMP solves placement in linear time because monitors can
    steer measurement packets over any cycle-free path. If instead the
    network routes every packet along a fixed (shortest) path — the
    standard IP situation — each monitor pair contributes exactly one
    measurement row, and placing the minimum number of monitors to
    identify all links is NP-hard. This module implements that regime:
    deterministic shortest-path routing, the rank attained by a
    placement, a greedy heuristic placement, and an exhaustive optimum
    for small networks — giving the library a baseline to quantify how
    much controllable routing buys (see the [ablation] benchmark).

    Under fixed routing, full identifiability is usually impossible no
    matter the placement (links off every shortest path are never
    measured), so results are expressed as attained rank / identifiable
    links rather than a yes/no. *)

open Nettomo_graph

val route : Graph.t -> Graph.node -> Graph.node -> Paths.path option
(** The fixed route between two nodes: the BFS shortest path with
    deterministic (smallest-identifier) tie-breaking. Symmetric:
    [route g u v] is the reverse of [route g v u]. *)

val measurement_paths : Graph.t -> monitors:Graph.node list -> Paths.path list
(** The routes between all monitor pairs (one per unordered pair). *)

val rank_of : Graph.t -> monitors:Graph.node list -> int
(** Rank of the fixed-routing measurement matrix of the placement. *)

val identifiable_links : Graph.t -> monitors:Graph.node list -> Graph.EdgeSet.t
(** Links whose metric the placement determines uniquely. *)

val greedy_place : ?target_rank:int -> Graph.t -> Graph.node list
(** Greedy heuristic: repeatedly add the monitor that maximizes the rank
    of the measurement matrix, until the target rank (default: the
    maximum attainable with all nodes as monitors) is reached or no
    candidate improves it. Returns monitors in selection order. *)

val max_rank : Graph.t -> int
(** Rank attained when every node is a monitor — the best fixed routing
    can ever do on this topology. *)

val optimal_kappa_bruteforce : ?max_kappa:int -> Graph.t -> int option
(** Smallest placement size attaining {!max_rank}, by exhaustive search
    over all subsets up to [max_kappa] (default: all nodes). Exponential;
    small graphs only. *)
