(** Tomography with noisy measurements.

    The paper's "constant" metrics explicitly include statistical
    characteristics such as the mean delay (Section 1, footnote 1): each
    end-to-end measurement is then the true path metric plus zero-mean
    noise, and repeating measurements drives the estimate to the mean.
    This module simulates that regime on top of the identifiability
    machinery: the measurement paths still come from the exact full-rank
    plan, but each path is measured [repetitions] times with Gaussian
    noise, the per-path averages form the right-hand side, and the linear
    system is solved in floating point.

    For an identifiable network the estimation error vanishes as
    [repetitions] grows — the convergence is demonstrated by the [noisy]
    benchmark ablation and checked by tests. *)

open Nettomo_graph

val measure :
  Nettomo_util.Prng.t ->
  Measurement.weights ->
  sigma:float ->
  Paths.path ->
  float
(** One noisy end-to-end measurement: true path metric plus
    [N(0, sigma²)] noise. *)

val measure_averaged :
  Nettomo_util.Prng.t ->
  Measurement.weights ->
  sigma:float ->
  repetitions:int ->
  Paths.path ->
  float
(** Average of [repetitions] noisy measurements. *)

type estimate = {
  link : Graph.edge;
  estimated : float;
  true_value : float;
}

val recover :
  ?rng:Nettomo_util.Prng.t ->
  Net.t ->
  Measurement.weights ->
  sigma:float ->
  repetitions:int ->
  estimate list option
(** Full pipeline: build the exact measurement plan, take averaged noisy
    measurements, solve in floating point. [None] when the network is
    not identifiable with the given monitors. *)

val recover_least_squares :
  ?rng:Nettomo_util.Prng.t ->
  extra_paths:int ->
  Net.t ->
  Measurement.weights ->
  sigma:float ->
  repetitions:int ->
  estimate list option
(** Overdetermined variant: besides the [n] independent plan paths,
    measure [extra_paths] additional (generally dependent) random
    measurement paths and solve in the least-squares sense. The extra
    rows cost measurements but average the noise down further — the
    ablation benchmark quantifies the trade-off. *)

val max_abs_error : estimate list -> float
val rmse : estimate list -> float
