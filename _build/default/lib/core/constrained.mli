(** Greedy monitor placement under a candidate-set constraint.

    Real deployments often cannot put monitors everywhere — only
    gateways, or only nodes of one administrative domain, are eligible
    (the constraint the paper points to in Section 7.3.2, footnote 17).
    MMP's optimality argument does not survive such constraints, and
    full identifiability may be out of reach entirely; the practical
    question becomes "which eligible nodes buy the most coverage?".

    This module answers it greedily: repeatedly add the eligible node
    that maximizes the rank of the measurement-path space, until the
    rank stops improving or every link is covered. Rank is evaluated
    with the sampled independent-path search of {!Solver} (a
    high-probability lower bound; see {!Partial}), so verdicts are
    conservative: reported coverage is always achievable. *)

open Nettomo_graph

type result = {
  monitors : Graph.node list;  (** in selection order *)
  rank : int;  (** independent paths achieved *)
  report : Partial.report;  (** per-link coverage of the final placement *)
}

val greedy_place :
  ?rng:Nettomo_util.Prng.t ->
  ?max_monitors:int ->
  Graph.t ->
  candidates:Graph.node list ->
  result
(** Raises [Invalid_argument] if a candidate is not a node of the graph
    or fewer than two candidates are given. [max_monitors] (default:
    all candidates) caps the placement size. *)
