(** A monitored network: the topology together with the set of monitors
    (Section 2.1 of the paper). Monitors can initiate and collect
    measurements over controllable, cycle-free paths; all other nodes
    are ordinary internal nodes. *)

open Nettomo_graph

type t

val create :
  ?labels:string Graph.NodeMap.t -> Graph.t -> monitors:Graph.node list -> t
(** Raises [Invalid_argument] if a monitor is not a node of the graph or
    the monitor list contains duplicates. *)

val graph : t -> Graph.t
val monitors : t -> Graph.NodeSet.t
val monitor_list : t -> Graph.node list
val kappa : t -> int
(** Number of monitors (κ in the paper). *)

val is_monitor : t -> Graph.node -> bool
val non_monitors : t -> Graph.NodeSet.t
val labels : t -> string Graph.NodeMap.t
val label : t -> Graph.node -> string
(** The node's label, falling back to its numeral. *)

val with_monitors : t -> Graph.node list -> t
(** Same topology, different monitor set. *)

val monitor_pairs : t -> (Graph.node * Graph.node) list
(** All unordered monitor pairs — the possible measurement endpoints. *)

val pp : Format.formatter -> t -> unit
