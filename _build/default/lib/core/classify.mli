(** The constructive machinery of Section 5.2: cross-links, shortcuts and
    non-separating cycles (Definitions 2–4).

    Under the conditions of Theorem 3.2 every interior link is either a
    {e cross-link} — identifiable from four measurements via equation (7)
    — or a {e shortcut} — identifiable from two measurements plus an
    already-identified detour via equation (9). This module searches for
    those witness structures explicitly, which both illustrates the proof
    and yields concrete per-link identification formulas.

    The searches enumerate simple paths and are exponential: they are
    meant for small networks (examples, tests), with [limit] guards. *)

open Nettomo_graph
open Nettomo_linalg

type kind =
  | Cross_link of {
      pa : Paths.path;
      pb : Paths.path;
      pc : Paths.path;
      pd : Paths.path;
    }
      (** Witness measurement paths of Definition 2:
          [W_y = (W_PC + W_PD − W_PA − W_PB) / 2]. *)
  | Shortcut of { pa : Paths.path; pb : Paths.path; via : Paths.path }
      (** Witness of Definition 3: [via] is the identified detour [P₃]
          between the link's endpoints, and
          [W_y = W_PA − W_PB + W_{P₃}]. *)
  | Unclassified
      (** No witness found — under Theorem 3.2's conditions this does
          not happen for interior links. *)

val pp_kind : Format.formatter -> kind -> unit

val classify : ?limit:int -> Net.t -> kind Graph.EdgeMap.t
(** Classification of every interior link of a 2-monitor network.
    Cross-links are found first; shortcuts are then closed under a
    fixpoint, allowing detours through links identified earlier. Raises
    [Invalid_argument] unless the network has exactly two monitors. *)

val identify : ?limit:int -> Net.t -> Measurement.weights ->
  (Graph.edge * Rational.t) list
(** Apply the identification formulas (7) and (9) to every classified
    interior link, measuring the witness paths against the given
    ground-truth metrics. Returns the computed metric per classified
    link (equal to the ground truth — the formulas are exact). *)

val is_non_separating_cycle : Net.t -> Graph.node list -> bool
(** Definition 4: the node sequence (in cyclic order, without repeating
    the first node) forms an induced cycle [F] of the graph such that
    every connected component of [G ∖ F] contains at least one
    monitor. *)

val non_separating_cycles : ?limit:int -> Net.t -> Graph.node list list
(** All non-separating cycles, each reported once with its smallest node
    first. Exponential; [limit] (default 100,000) bounds the number of
    candidate cycles examined, raising [Paths.Limit_exceeded] beyond. *)
