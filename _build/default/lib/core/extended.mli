(** The extended graph [Gex] of Section 6 (Fig. 3): two virtual monitors
    [m'₁, m'₂], each connected to every real monitor by a virtual link.
    [G] itself becomes the interior graph of [Gex], which converts the
    κ-monitor identifiability question into the two-monitor interior
    question and yields Theorem 3.3: [G] is identifiable with κ ≥ 3
    monitors iff [Gex] is 3-vertex-connected. *)

open Nettomo_graph

type t = {
  graph : Graph.t;  (** [Gex] *)
  vm1 : Graph.node;  (** virtual monitor m'₁ *)
  vm2 : Graph.node;  (** virtual monitor m'₂ *)
}

val extend : Net.t -> t
(** Raises [Invalid_argument] if the network has no monitors. The virtual
    monitors receive fresh node identifiers above every existing node. *)

val as_two_monitor_net : Net.t -> Net.t
(** The extended graph as a 2-monitor network on the virtual monitors —
    the reduction used by Lemma 6.1. *)
