lib/core/mmp.ml: Array Biconnected Graph List Net Nettomo_graph Nettomo_util Traversal Triconnected
