lib/core/measurement.ml: Array Graph List Matrix Net Nettomo_graph Nettomo_linalg Nettomo_util Rational Result Seq
