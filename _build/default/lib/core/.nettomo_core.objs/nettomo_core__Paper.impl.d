lib/core/paper.ml: Graph List Net Nettomo_graph Printf Seq
