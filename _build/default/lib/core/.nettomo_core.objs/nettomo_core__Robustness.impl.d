lib/core/robustness.ml: Format Graph Identifiability List Net Nettomo_graph Traversal
