lib/core/solver.mli: Graph Measurement Net Nettomo_graph Nettomo_linalg Nettomo_util Paths Rational
