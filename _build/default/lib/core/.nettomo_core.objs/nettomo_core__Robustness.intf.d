lib/core/robustness.mli: Format Graph Net Nettomo_graph
