lib/core/fixed_routing.ml: Array Fun Graph List Measurement Nettomo_graph Nettomo_linalg Option Traversal
