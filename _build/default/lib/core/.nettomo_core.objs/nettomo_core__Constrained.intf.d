lib/core/constrained.mli: Graph Nettomo_graph Nettomo_util Partial
