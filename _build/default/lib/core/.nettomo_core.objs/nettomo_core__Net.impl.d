lib/core/net.ml: Format Graph List Nettomo_graph
