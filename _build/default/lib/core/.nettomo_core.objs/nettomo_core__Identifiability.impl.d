lib/core/identifiability.ml: Array Bridges Extended Format Graph Interior List Measurement Net Nettomo_graph Nettomo_linalg Paths Sparsify Traversal
