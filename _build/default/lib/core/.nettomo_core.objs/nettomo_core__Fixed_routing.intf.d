lib/core/fixed_routing.mli: Graph Nettomo_graph Paths
