lib/core/partial.mli: Format Graph Net Nettomo_graph Nettomo_util
