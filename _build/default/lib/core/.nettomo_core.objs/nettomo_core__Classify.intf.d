lib/core/classify.mli: Format Graph Measurement Net Nettomo_graph Nettomo_linalg Paths Rational
