lib/core/rmp.ml: Array Graph Identifiability Net Nettomo_graph Nettomo_util
