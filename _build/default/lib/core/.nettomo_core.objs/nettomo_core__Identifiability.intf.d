lib/core/identifiability.mli: Format Graph Net Nettomo_graph Nettomo_linalg
