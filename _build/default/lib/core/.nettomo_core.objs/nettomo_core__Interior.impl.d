lib/core/interior.ml: Graph List Net Nettomo_graph Traversal
