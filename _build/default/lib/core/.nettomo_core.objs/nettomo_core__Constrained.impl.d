lib/core/constrained.ml: Graph List Net Nettomo_graph Nettomo_util Option Partial Solver
