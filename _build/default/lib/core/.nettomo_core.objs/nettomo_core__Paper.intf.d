lib/core/paper.mli: Graph Net Nettomo_graph Paths
