lib/core/rmp.mli: Graph Nettomo_graph Nettomo_util
