lib/core/net.mli: Format Graph Nettomo_graph
