lib/core/solver.ml: Array Graph List Measurement Net Nettomo_graph Nettomo_linalg Nettomo_util Option Paths Traversal
