lib/core/extended.mli: Graph Net Nettomo_graph
