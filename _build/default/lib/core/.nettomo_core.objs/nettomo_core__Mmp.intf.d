lib/core/mmp.mli: Graph Net Nettomo_graph Nettomo_util
