lib/core/noisy.mli: Graph Measurement Net Nettomo_graph Nettomo_util Paths
