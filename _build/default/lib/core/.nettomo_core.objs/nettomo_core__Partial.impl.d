lib/core/partial.ml: Array Format Graph Identifiability List Measurement Net Nettomo_graph Nettomo_linalg Solver
