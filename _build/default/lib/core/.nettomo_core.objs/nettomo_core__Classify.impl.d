lib/core/classify.ml: Array Format Fun Graph Hashtbl Interior List Measurement Net Nettomo_graph Nettomo_linalg Paths Traversal
