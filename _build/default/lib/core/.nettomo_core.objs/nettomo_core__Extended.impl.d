lib/core/extended.ml: Graph Net Nettomo_graph
