lib/core/measurement.mli: Graph Matrix Net Nettomo_graph Nettomo_linalg Nettomo_util Paths Rational
