lib/core/noisy.ml: Array Float Graph List Measurement Net Nettomo_graph Nettomo_linalg Nettomo_util Paths Solver
