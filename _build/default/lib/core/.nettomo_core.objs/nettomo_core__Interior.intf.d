lib/core/interior.mli: Graph Net Nettomo_graph
