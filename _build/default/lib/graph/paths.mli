(** Simple paths: validation, exhaustive enumeration, randomized sampling.

    A path is a node sequence [v0; v1; …; vk] with all nodes distinct and
    every consecutive pair linked — the "controllable, cycle-free
    measurement paths" of the paper. Exhaustive enumeration is exponential
    in general; it is meant for small graphs (ground-truth identifiability
    checks), with a hard [limit] guard. Randomized sampling is the
    workhorse for constructing measurement paths on larger networks. *)

type path = Graph.node list

val is_simple_path : Graph.t -> path -> bool
(** Whether the sequence is a simple path of the graph with ≥ 2 nodes. *)

val path_edges : path -> Graph.edge list
(** Links traversed by a path, normalized. Raises [Invalid_argument] on
    sequences shorter than 2 nodes or with repeated consecutive nodes. *)

val length : path -> int
(** Number of links (nodes minus one). *)

exception Limit_exceeded

val all_simple_paths :
  ?limit:int -> Graph.t -> Graph.node -> Graph.node -> path list
(** Every simple path between two distinct nodes, by backtracking DFS.
    Raises {!Limit_exceeded} if more than [limit] (default 200,000) paths
    exist — enumeration is exponential, keep inputs small. *)

val count_simple_paths :
  ?limit:int -> Graph.t -> Graph.node -> Graph.node -> int
(** Number of simple paths, same caveats. *)

val random_simple_path :
  Nettomo_util.Prng.t -> Graph.t -> Graph.node -> Graph.node -> path option
(** A simple path found by randomized depth-first search (random
    neighbor order, permanent visit marks — linear time). Returns
    [None] iff no path exists. The distribution is biased but varied,
    which is all the incremental basis construction needs. *)
