(** Sparse k-connectivity certificates
    (Nagamochi–Ibaraki / Cheriyan–Kao–Thurimella).

    The union of [k] successively-extracted breadth-first spanning
    forests — BFS is a special case of scan-first search — is a sparse
    certificate for k-vertex-connectivity: it has at most [k·(|V|−1)]
    links, and it is k-vertex-connected iff the original graph is (more
    generally, it preserves all vertex-connectivity values up to [k],
    and every cut vertex / separation pair of the certificate is one of
    the original graph and vice versa, as long as connectivity stays
    below [k]).

    This matters for the identifiability test on dense networks: the
    3-vertex-connectivity sweep costs [O(|V|·(|V|+|L|))], so replacing
    [L] by a certificate of ≤ [3·|V|] links first makes the test
    effectively [O(|V|²)] regardless of density. *)

val forest_partition : Graph.t -> k:int -> Graph.EdgeSet.t list
(** The first [k] BFS spanning forests: [F₁] is a spanning forest of
    [G], [F₂] of [G − F₁], and so on. Some trailing forests may be
    empty. *)

val certificate : Graph.t -> k:int -> Graph.t
(** Union of the first [k] forests, over the same node set. At most
    [k·(|V|−1)] links. Requires [k ≥ 1]. *)

val is_three_vertex_connected : Graph.t -> bool
(** {!Separation.is_three_vertex_connected} on the 3-certificate —
    same verdict, faster on dense graphs. *)
