(** Triconnected components, following the construction in Section 7.2 of
    the paper: inside each biconnected component, repeatedly connect the
    two vertices of a minimal 2-vertex cut by a {e virtual link} and split
    the graph along the cut, until no component has a 2-vertex cut left.
    The resulting components are either 3-vertex-connected, polygons
    (cycles, reported whole), or triangles — this is the classical
    Hopcroft–Tarjan split decomposition up to bond components, which
    cannot arise in simple graphs.

    MMP (Algorithm 1) consumes this decomposition: its rule (iii) requires
    every triconnected component with ≥ 3 nodes to contain at least three
    nodes that are separation vertices or monitors. *)

type component = {
  nodes : Graph.NodeSet.t;
  edges : Graph.EdgeSet.t;  (** component links, virtual ones included *)
  virtuals : Graph.EdgeSet.t;  (** the virtual links among [edges] *)
}

val pp_component : Format.formatter -> component -> unit

val split_biconnected : Graph.t -> component list
(** Triconnected components of a biconnected graph (≥ 3 nodes, no cut
    vertex). Raises [Invalid_argument] if the input has a cut vertex or is
    disconnected. *)

type t = {
  blocks : (Biconnected.component * component list) list;
      (** Each biconnected component paired with its triconnected
          components. Blocks with fewer than 3 nodes have an empty
          component list. *)
  cut_vertices : Graph.NodeSet.t;
  separation_pairs : Graph.edge list;
      (** All minimal 2-vertex cuts, collected per block. *)
  separation_vertices : Graph.NodeSet.t;
      (** Cut-vertices plus members of minimal 2-vertex cuts — the
          "separation vertices" of Section 7.2. *)
}

val decompose : Graph.t -> t
(** Full decomposition of an arbitrary graph. *)

val components : Graph.t -> component list
(** Just the triconnected components across all blocks. *)
