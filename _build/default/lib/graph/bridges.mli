(** Bridge detection and 2-edge-connectivity (Tarjan 1974, the paper's
    reference [27] for testing Condition ① of Theorem 3.2).

    A bridge is a link whose removal disconnects its component. A graph is
    2-edge-connected iff it has at least two nodes, is connected, and has
    no bridge. *)

val bridges : Graph.t -> Graph.EdgeSet.t
(** All bridges, over every connected component. Linear time. *)

val is_two_edge_connected : Graph.t -> bool
(** [true] iff the graph has ≥ 2 nodes, is connected and bridge-free. *)

val is_two_edge_connected_without : Graph.t -> Graph.edge -> bool
(** [is_two_edge_connected_without g l] tests [G - l], without building
    the smaller graph. The edge must be present in [g]. *)
