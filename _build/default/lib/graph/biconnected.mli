(** Cut vertices and biconnected components (Tarjan 1972, the paper's
    reference [29] for line 2 of Algorithm 1 / MMP).

    Following the paper's Definition 5 with k = 2, the biconnected
    components ("blocks") of a graph are its maximal 2-vertex-connected
    sub-graphs together with its bridges (complete graphs on 2 nodes) and
    isolated nodes (complete graphs on 1 node). Every link belongs to
    exactly one block; blocks intersect only at cut vertices. *)

type component = {
  nodes : Graph.NodeSet.t;
  edges : Graph.EdgeSet.t;
}

type result = {
  components : component list;
  cut_vertices : Graph.NodeSet.t;
}

val decompose : Graph.t -> result
(** Blocks and cut vertices of the whole graph, over every connected
    component. Linear time. *)

val cut_vertices : Graph.t -> Graph.NodeSet.t
(** Just the cut vertices. *)

val is_biconnected : Graph.t -> bool
(** 2-vertex-connectivity: ≥ 3 nodes, connected, and no cut vertex. *)

val is_biconnected_without : Graph.t -> Graph.node -> bool
(** [is_biconnected_without g v] tests whether [G - v] is biconnected,
    without building the smaller graph. *)

val is_connected_and_cut_free_without : Graph.t -> Graph.node -> bool
(** Whether [G - v] is connected and has no cut vertex (no constraint on
    its size). This is the building block of the 3-vertex-connectivity
    sweep: [G] with ≥ 4 nodes is 3-vertex-connected iff [G - v] is
    connected and cut-free for every node [v]. *)

(**/**)

(** Low-level entry points over the compact form, shared with
    {!Separation} so that sweeps over all [G - v] reuse one adjacency
    structure. Not part of the stable API. *)
module Internal : sig
  val decompose_compact :
    Graph.Compact.t ->
    skip_node:int option ->
    (int * int) list list * bool array * int list * int
  (** [(blocks as compact-index edge lists, is-cut-vertex array, isolated
      visited roots, connected-component count)] of the graph minus the
      skipped index. *)

  val connected_and_cut_free : Graph.Compact.t -> int option -> bool
end

