(** Graphviz export, for inspecting topologies, monitor placements and
    decompositions. *)

val to_dot :
  ?name:string ->
  ?highlight:Graph.NodeSet.t ->
  ?labels:string Graph.NodeMap.t ->
  ?edge_labels:string Graph.EdgeMap.t ->
  Graph.t ->
  string
(** DOT source for the graph. Highlighted nodes (e.g. monitors) are drawn
    as filled boxes. *)

val write_file :
  ?name:string ->
  ?highlight:Graph.NodeSet.t ->
  ?labels:string Graph.NodeMap.t ->
  ?edge_labels:string Graph.EdgeMap.t ->
  string ->
  Graph.t ->
  unit
