(** Basic graph traversals: reachability, connected components, BFS
    distances. All functions treat the graph as undirected.

    Several functions take [?avoid_nodes] / [?avoid_edge] parameters so
    that callers can ask connectivity questions about [G - v] or [G - l]
    without materializing the smaller graph — the identifiability tests of
    Section 7.1 ask many such questions. *)

val reachable :
  ?avoid_nodes:Graph.NodeSet.t ->
  ?avoid_edge:Graph.edge ->
  Graph.t ->
  Graph.node ->
  Graph.NodeSet.t
(** Nodes reachable from the start node (inclusive) without entering any
    avoided node or crossing the avoided edge. The start node must not be
    avoided. *)

val component_of : Graph.t -> Graph.node -> Graph.NodeSet.t
(** Connected component containing the node. *)

val components :
  ?avoid_nodes:Graph.NodeSet.t -> Graph.t -> Graph.NodeSet.t list
(** Connected components of the graph with the avoided nodes removed. *)

val is_connected :
  ?avoid_nodes:Graph.NodeSet.t -> ?avoid_edge:Graph.edge -> Graph.t -> bool
(** Whether the graph (minus avoided nodes / the avoided edge) is
    connected. Graphs with zero or one remaining node are connected. *)

val n_components : ?avoid_nodes:Graph.NodeSet.t -> Graph.t -> int

val bfs_distances : Graph.t -> Graph.node -> int Graph.NodeMap.t
(** Hop distances from the source to every reachable node. *)

val shortest_path :
  Graph.t -> Graph.node -> Graph.node -> Graph.node list option
(** A shortest path as a node sequence (inclusive of both endpoints), or
    [None] if unreachable. *)

val spanning_tree : Graph.t -> Graph.EdgeSet.t
(** Edges of a BFS spanning forest (a tree per component). *)
