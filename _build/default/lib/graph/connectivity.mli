(** Menger-style connectivity oracles based on unit-capacity maximum flow.

    These are independent implementations of the connectivity predicates
    used by the identifiability tests, intended for cross-validation and
    for general [k]: edge connectivity via max-flow between node pairs,
    vertex connectivity via node splitting. They are polynomial but much
    slower than the dedicated linear-time tests in {!Bridges},
    {!Biconnected} and {!Separation}; use them on small graphs (tests) or
    when [k > 3] is needed. *)

val max_flow_edges : Graph.t -> Graph.node -> Graph.node -> int
(** Maximum number of edge-disjoint paths between two distinct nodes. *)

val max_flow_vertices : Graph.t -> Graph.node -> Graph.node -> int
(** Maximum number of internally vertex-disjoint paths between two
    distinct nodes. For adjacent nodes the direct link counts as one
    path. *)

val edge_connectivity : Graph.t -> int
(** Global edge connectivity λ(G). 0 for disconnected or single-node
    graphs. *)

val vertex_connectivity : Graph.t -> int
(** Global vertex connectivity κ(G): [n - 1] for complete graphs,
    otherwise the minimum over non-adjacent pairs of vertex-disjoint
    paths. 0 for disconnected graphs; raises [Invalid_argument] on graphs
    with fewer than 2 nodes. *)

val is_k_edge_connected : Graph.t -> int -> bool
val is_k_vertex_connected : Graph.t -> int -> bool
