(** 2-vertex cuts (separation pairs) and 3-vertex-connectivity.

    Terminology follows the paper (Section 7.2, footnotes 9–10): a
    {e 2-vertex cut} is a pair [{a, b}] such that removing [a] or [b]
    alone leaves the graph connected but removing both disconnects it;
    the cut is {e minimal} when neither vertex is a cut-vertex. For a
    biconnected graph every 2-vertex cut is minimal, and these pairs are
    exactly the separation pairs along which the triconnected
    decomposition splits.

    The sweep method is used: [{v, u}] is a 2-vertex cut iff [u] is a
    cut-vertex of [G - v], giving all cuts in [O(|V|·(|V|+|L|))] time. *)

val cut_pairs : Graph.t -> Graph.edge list
(** All minimal 2-vertex cuts of a connected graph, as normalized node
    pairs (which need not be links), in lexicographic order. *)

val first_cut_pair : Graph.t -> Graph.edge option
(** Some minimal 2-vertex cut, with early exit, or [None]. *)

val cut_pair_members : Graph.t -> Graph.NodeSet.t
(** All nodes belonging to at least one minimal 2-vertex cut. *)

val is_three_vertex_connected : Graph.t -> bool
(** Whether the graph is 3-vertex-connected: at least 4 nodes, and
    [G - v] is connected and cut-vertex-free for every node [v]. This is
    the test used for Condition ② of Theorem 3.2 and for Theorem 3.3. *)
