lib/graph/biconnected.mli: Graph
