lib/graph/traversal.ml: Graph List Queue
