lib/graph/biconnected.ml: Array Graph List
