lib/graph/graph.mli: Format Map Set
