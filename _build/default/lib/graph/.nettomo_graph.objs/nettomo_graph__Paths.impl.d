lib/graph/paths.ml: Array Graph Hashtbl List Nettomo_util
