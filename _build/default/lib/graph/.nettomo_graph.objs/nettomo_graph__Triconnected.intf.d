lib/graph/triconnected.mli: Biconnected Format Graph
