lib/graph/triconnected.ml: Biconnected Format Graph List Separation Traversal
