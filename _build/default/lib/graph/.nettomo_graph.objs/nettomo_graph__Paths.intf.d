lib/graph/paths.mli: Graph Nettomo_util
