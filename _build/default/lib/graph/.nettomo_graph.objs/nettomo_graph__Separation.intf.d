lib/graph/separation.mli: Graph
