lib/graph/graph.ml: Array Format Int List Map Option Seq Set
