lib/graph/separation.ml: Array Biconnected Graph
