lib/graph/connectivity.ml: Array Graph List Option Queue Traversal
