lib/graph/sparsify.mli: Graph
