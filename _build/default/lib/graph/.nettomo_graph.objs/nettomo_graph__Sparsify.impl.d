lib/graph/sparsify.ml: Graph List Queue Separation
