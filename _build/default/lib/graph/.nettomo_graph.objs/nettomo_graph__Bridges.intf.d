lib/graph/bridges.mli: Graph
