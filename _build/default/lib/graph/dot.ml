let node_label labels v =
  match Graph.NodeMap.find_opt v labels with
  | Some s -> s
  | None -> string_of_int v

let to_dot ?(name = "G") ?(highlight = Graph.NodeSet.empty)
    ?(labels = Graph.NodeMap.empty) ?(edge_labels = Graph.EdgeMap.empty) g =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "graph %s {\n" name;
  pf "  node [shape=circle fontsize=10];\n";
  Graph.iter_nodes
    (fun v ->
      let attrs =
        if Graph.NodeSet.mem v highlight then
          " shape=box style=filled fillcolor=lightblue"
        else ""
      in
      pf "  n%d [label=\"%s\"%s];\n" v (node_label labels v) attrs)
    g;
  Graph.iter_edges
    (fun ((u, v) as e) ->
      match Graph.EdgeMap.find_opt e edge_labels with
      | Some l -> pf "  n%d -- n%d [label=\"%s\"];\n" u v l
      | None -> pf "  n%d -- n%d;\n" u v)
    g;
  pf "}\n";
  Buffer.contents buf

let write_file ?name ?highlight ?labels ?edge_labels file g =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?name ?highlight ?labels ?edge_labels g))
