(** Degree and connectivity statistics of topologies, used by the
    benchmark harness to report the structural quantities the paper
    discusses (average degree, fraction of degree < 3 nodes, 3-vertex
    connectivity of realizations). *)

open Nettomo_graph

type t = {
  nodes : int;
  links : int;
  avg_degree : float;
  min_degree : int;
  max_degree : int;
  degree_lt3_frac : float;  (** fraction of nodes with degree < 3 *)
  connected : bool;
}

val summary : Graph.t -> t
val pp : Format.formatter -> t -> unit

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, count)] pairs in increasing degree order. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)
