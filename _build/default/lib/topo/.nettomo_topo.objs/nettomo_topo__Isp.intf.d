lib/topo/isp.mli: Graph Nettomo_graph Nettomo_util Prng
