lib/topo/edgelist.mli: Graph Nettomo_graph
