lib/topo/edgelist.ml: Buffer Fun Graph List Nettomo_graph Printf String
