lib/topo/stats.mli: Format Graph Nettomo_graph
