lib/topo/gen.mli: Graph Nettomo_graph Nettomo_util Prng
