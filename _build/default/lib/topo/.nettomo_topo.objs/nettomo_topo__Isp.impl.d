lib/topo/isp.ml: Float Gen Graph Hashtbl List Nettomo_graph Nettomo_util Prng String
