lib/topo/gen.ml: Array Float Fun Graph Hashtbl List Nettomo_graph Nettomo_util Printf Prng Traversal
