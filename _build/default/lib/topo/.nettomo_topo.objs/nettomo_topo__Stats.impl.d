lib/topo/stats.ml: Format Graph Hashtbl List Nettomo_graph Option Traversal
