(** Plain-text edge-list topology format.

    One link per line as two whitespace-separated integer node
    identifiers; [#] starts a comment; blank lines ignored. An optional
    [node <id>] line declares an isolated node. This is the on-disk
    format used by the CLI and the bundled fixture topologies. *)

open Nettomo_graph

val of_string : string -> Graph.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val to_string : Graph.t -> string

val read_file : string -> Graph.t
val write_file : string -> Graph.t -> unit
