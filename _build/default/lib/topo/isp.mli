(** Synthetic ISP-like topologies standing in for the Rocketfuel and
    CAIDA AS data sets (Tables 2–3, Figs. 11–12 of the paper).

    The real data sets are not redistributable and the build environment
    has no network access, so this generator reproduces the structural
    features the paper identifies as driving monitor placement:

    - a connected, preferentially-attached {e backbone core} (CAIDA-like
      topologies use a denser, more skewed core);
    - {e dangling gateway nodes} of degree 1 hanging off the core — each
      one is forced to be a monitor by MMP rule (i);
    - {e tandem nodes} of degree 2 spliced into core paths — forced
      monitors by rule (ii).

    Each AS from the paper's tables is described by a {!spec} carrying
    the paper's exact node and link counts plus calibrated dangling /
    tandem fractions; the resulting [κ_MMP / |V|] lands near the paper's
    reported ratio, preserving the comparisons the evaluation makes. *)

open Nettomo_graph
open Nettomo_util

type spec = {
  name : string;  (** e.g. ["AS1755 Ebone"] *)
  nodes : int;  (** paper's [|V|] *)
  links : int;  (** paper's [|L|] *)
  dangling_frac : float;  (** fraction of nodes that are degree-1 gateways *)
  tandem_frac : float;  (** fraction of nodes that are degree-2 tandems *)
  paper_r_mmp : float;  (** the paper's reported κ_MMP / |V|, for reporting *)
}

val generate : Prng.t -> spec -> Graph.t
(** A connected graph with exactly [spec.nodes] nodes and [spec.links]
    links (when satisfiable; raises [Invalid_argument] otherwise). *)

val rocketfuel : spec list
(** The nine Rocketfuel ASes of Table 2, in the paper's order. *)

val caida : spec list
(** The five CAIDA ASes of Table 3, in the paper's order. *)

val find : string -> spec option
(** Look up a spec by substring of its name (case-insensitive). *)
