(** Arbitrary-precision signed integers.

    Gaussian elimination over the rationals makes numerators and
    denominators grow beyond 63 bits even on modest measurement matrices,
    and no bignum package is available offline, so this module provides a
    self-contained implementation: sign-magnitude with base-2{^30} limbs,
    schoolbook multiplication and shift-subtract division. Magnitudes in
    this library stay small (hundreds of bits), so asymptotically fancy
    algorithms are deliberately avoided. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val to_int : t -> int option
(** [None] if the value does not fit in a native [int]. *)

val of_string : string -> t
(** Decimal, with optional leading [-]. Raises [Invalid_argument] on
    malformed input. *)

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q·b + r], [q] truncated toward
    zero and [r] carrying the sign of [a] (as native [( / )] and
    [( mod )]). Raises [Division_by_zero]. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val pow : t -> int -> t
(** [pow a k] for [k ≥ 0]. *)

val to_float : t -> float
val pp : Format.formatter -> t -> unit
