(** Dense floating-point matrices: Gaussian elimination with partial
    pivoting and linear least squares.

    The exact {!Matrix} decides identifiability; this module serves the
    statistical side (noisy measurements, where metrics are means and
    exactness is meaningless): averaging repeated measurements and
    solving — or least-squares fitting — in floating point. *)

type t

val make : int -> int -> float -> t
val init : int -> int -> (int -> int -> float) -> t
val of_rows : float array array -> t
val of_matrix : Matrix.t -> t
(** Convert an exact matrix entrywise. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val mul_vec : t -> float array -> float array
val transpose : t -> t

val solve : t -> float array -> float array option
(** Square system by Gaussian elimination with partial pivoting; [None]
    if (numerically) singular. Raises [Invalid_argument] on non-square
    input or dimension mismatch. *)

val least_squares : t -> float array -> float array option
(** Minimize ‖A·x − b‖₂ for a full-column-rank [A] (rows ≥ cols) via the
    normal equations. [None] when AᵀA is numerically singular. *)

val residual_norm : t -> float array -> float array -> float
(** ‖A·x − b‖₂. *)

val pp : Format.formatter -> t -> unit
