(** Floating-point row-space basis with partial pivoting.

    A fast companion to {!Basis}: the measurement-path search tests
    thousands of candidate incidence rows, and almost all of them are
    rejected as linearly dependent. Reducing a candidate against a float
    basis costs microseconds instead of the milliseconds of exact
    rational elimination, so the searcher uses this structure as a
    prefilter and confirms only the accepted rows exactly.

    Verdicts are approximate: a row whose residual max-norm falls below
    [epsilon] (default 1e-9) is reported dependent. For the 0/1
    incidence rows of measurement matrices at realistic sizes this never
    misfires in practice, and the exact confirmation step keeps the
    final plan sound regardless. *)

type t

val create : ?epsilon:float -> int -> t
val dimension : t -> int
val rank : t -> int
val is_full : t -> bool

val would_increase_rank : t -> float array -> bool
(** Whether the vector's residual against the basis is numerically
    non-zero. Does not modify the basis. *)

val add : t -> float array -> bool
(** Add a vector; [true] iff it (numerically) increased the rank. The
    input array is not retained. *)

val copy : t -> t
