(** Incremental row-space basis over ℚ.

    Measurement-path construction (Section 2.1 / the example of Section
    2.3) needs to grow a set of linearly independent paths one candidate
    at a time: a candidate path is kept iff its 0/1 incidence row
    increases the rank. This structure maintains a row-echelon basis so
    each candidate costs one forward reduction, and also answers
    row-space membership queries, which is how per-link identifiability
    ("is the i-th unit vector in the row space of R?") is decided. *)

type t

val create : int -> t
(** Basis of the zero subspace of ℚ{^n}. [n = 0] is allowed (and is
    trivially full). Raises [Invalid_argument] for negative [n]. *)

val dimension : t -> int
(** Ambient dimension [n]. *)

val rank : t -> int

val is_full : t -> bool
(** Whether the basis spans all of ℚ{^n}. *)

val reduce : t -> Rational.t array -> Rational.t array
(** Residual of a vector after eliminating against the basis; the zero
    vector iff the vector is in the span. Does not modify the basis. *)

val mem : t -> Rational.t array -> bool
(** Row-space membership. *)

val add : t -> Rational.t array -> bool
(** Add a vector. Returns [true] (and extends the basis) iff the vector
    was independent of the current span. The input array is not
    retained. *)

val copy : t -> t
