(** Dense matrices over ℚ with exact Gaussian elimination.

    This is the substrate for the linear-algebraic model of Section 2.1:
    the measurement matrix [R] is a 0/1 matrix over ℚ, the network is
    identifiable iff [rank R] equals the number of links, and metric
    recovery solves [R·w = c]. *)

type t

val make : int -> int -> Rational.t -> t
(** [make rows cols x] is a [rows × cols] matrix filled with [x]. *)

val init : int -> int -> (int -> int -> Rational.t) -> t
val of_rows : Rational.t array array -> t
(** Copies its argument; rows must be non-empty and equally long. *)

val of_int_rows : int array array -> t
val identity : int -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Rational.t
val row : t -> int -> Rational.t array
(** A copy of the row. *)

val to_rows : t -> Rational.t array array
(** A fresh copy of the contents. *)

val transpose : t -> t
val mul : t -> t -> t
(** Raises [Invalid_argument] on dimension mismatch. *)

val mul_vec : t -> Rational.t array -> Rational.t array
val equal : t -> t -> bool

val rank : t -> int
(** Exact rank over ℚ. *)

val rref : t -> t
(** Reduced row-echelon form. *)

val solve : t -> Rational.t array -> Rational.t array option
(** [solve a b] is some [x] with [a·x = b]. Requires [a] to have full
    column rank so that the solution, if any, is unique; returns [None]
    if the system is inconsistent. Raises [Invalid_argument] if [a] does
    not have full column rank or dimensions mismatch. *)

val inverse : t -> t option
(** [None] when singular. Raises [Invalid_argument] if not square. *)

val det : t -> Rational.t
(** Determinant of a square matrix. *)

val pp : Format.formatter -> t -> unit
