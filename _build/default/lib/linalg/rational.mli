(** Exact rational numbers over {!Bigint}.

    Values are kept normalized: positive denominator, numerator and
    denominator coprime, zero represented as 0/1. Link metrics, path
    measurements and all Gaussian elimination in this library are done
    over ℚ so that identifiability — a rank property — is decided
    exactly. *)

type t

val zero : t
val one : t

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints n d] is [n/d]. Raises [Division_by_zero] if [d = 0]. *)

val of_bigint : Bigint.t -> t
val make : Bigint.t -> Bigint.t -> t
(** [make num den], normalized. Raises [Division_by_zero] if [den] is
    zero. *)

val num : t -> Bigint.t
val den : t -> Bigint.t
(** Always positive. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Raises [Division_by_zero]. *)

val inv : t -> t
(** Raises [Division_by_zero] on zero. *)

val min : t -> t -> t
val max : t -> t -> t

val to_float : t -> float
val to_string : t -> string
(** ["n/d"], or just ["n"] for integers. *)

val of_string : string -> t
(** Parses ["n"], ["n/d"] or decimal notation like ["3.25"]. Raises
    [Invalid_argument] on malformed input. *)

val pp : Format.formatter -> t -> unit
