lib/linalg/fmatrix.mli: Format Matrix
