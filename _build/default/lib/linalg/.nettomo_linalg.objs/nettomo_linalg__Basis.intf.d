lib/linalg/basis.mli: Rational
