lib/linalg/basis.ml: Array List Rational
