lib/linalg/matrix.mli: Format Rational
