lib/linalg/rational.mli: Bigint Format
