lib/linalg/fbasis.ml: Array Float List
