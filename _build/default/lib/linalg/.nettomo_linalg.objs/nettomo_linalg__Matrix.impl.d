lib/linalg/matrix.ml: Array Format List Rational
