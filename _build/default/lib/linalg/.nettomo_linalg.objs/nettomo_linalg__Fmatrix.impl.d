lib/linalg/fmatrix.ml: Array Float Format Matrix Rational
