lib/linalg/rational.ml: Bigint Format String
