lib/linalg/fbasis.mli:
