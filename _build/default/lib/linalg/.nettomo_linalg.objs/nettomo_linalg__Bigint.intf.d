lib/linalg/bigint.mli: Format
