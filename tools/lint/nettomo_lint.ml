(* nettomo-lint: project static-analysis pass (AST engine).

   Usage: nettomo_lint.exe [--list-rules] [-q] [--json]
                           [--baseline FILE] [--write-baseline FILE]
                           [DIR_OR_FILE ...]

   Walks the given directories (default: lib bin bench examples test
   tools), parses every .ml (and scans every .mli) with the compiler's
   parser, and reports one "file:line: [rule-id] message" diagnostic
   per violation — or a deterministically sorted JSON array with
   [--json], suitable as a CI artifact. [--baseline FILE] subtracts
   the committed legacy findings; [--write-baseline FILE] regenerates
   that file from the current tree. Exits 0 when clean (above the
   baseline), 1 on violations, 2 on usage or I/O errors — suitable
   for CI and the `dune build @lint` alias. *)

let default_dirs = [ "lib"; "bin"; "bench"; "examples"; "test"; "tools" ]

let usage () =
  prerr_endline
    "usage: nettomo_lint.exe [--list-rules] [-q] [--json] [--baseline FILE] \
     [--write-baseline FILE] [DIR_OR_FILE ...]";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quiet = List.mem "-q" args in
  let json = List.mem "--json" args in
  if List.mem "--list-rules" args then begin
    List.iter
      (fun (id, descr) -> Printf.printf "%-22s %s\n" id descr)
      (Lint_engine.rule_ids
      @ [
          ("missing-mli", Lint_engine.missing_mli_description);
          ("parse-error", Lint_engine.parse_error_description);
        ]);
    exit 0
  end;
  (* Flags taking a value, then positional paths. *)
  let rec partition flags paths = function
    | [] -> (flags, List.rev paths)
    | ("--baseline" | "--write-baseline") :: ([] : string list) -> usage ()
    | (("--baseline" | "--write-baseline") as f) :: value :: rest ->
        partition ((f, value) :: flags) paths rest
    | ("-q" | "--json") :: rest -> partition flags paths rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Printf.eprintf "nettomo-lint: unknown flag %s\n" arg;
        usage ()
    | path :: rest -> partition flags (path :: paths) rest
  in
  let flags, paths = partition [] [] args in
  let paths =
    match paths with
    | [] -> List.filter Sys.file_exists default_dirs
    | paths -> paths
  in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then begin
    List.iter (Printf.eprintf "nettomo-lint: no such path: %s\n") missing;
    exit 2
  end;
  match Lint_engine.run_paths paths with
  | exception Sys_error msg ->
      Printf.eprintf "nettomo-lint: %s\n" msg;
      exit 2
  | all -> (
      match List.assoc_opt "--write-baseline" flags with
      | Some file ->
          Out_channel.with_open_bin file (fun oc ->
              Out_channel.output_string oc (Lint_engine.render_baseline all));
          Printf.printf "nettomo-lint: wrote baseline (%d finding(s)) to %s\n"
            (List.length all) file;
          exit 0
      | None ->
          let fresh =
            match List.assoc_opt "--baseline" flags with
            | None -> all
            | Some file -> (
                match
                  In_channel.with_open_bin file In_channel.input_all
                with
                | content ->
                    Lint_engine.apply_baseline
                      (Lint_engine.parse_baseline content)
                      all
                | exception Sys_error msg ->
                    Printf.eprintf "nettomo-lint: %s\n" msg;
                    exit 2)
          in
          if json then print_string (Lint_engine.to_json fresh)
          else
            List.iter
              (fun v -> print_endline (Lint_engine.violation_to_string v))
              fresh;
          if fresh = [] then begin
            if (not quiet) && not json then
              Printf.printf "nettomo-lint: clean (%s)\n"
                (String.concat " " paths);
            exit 0
          end
          else begin
            Printf.eprintf "nettomo-lint: %d violation(s)\n"
              (List.length fresh);
            exit 1
          end)
