(* nettomo-lint: project static-analysis pass.

   Usage: nettomo_lint.exe [--list-rules] [-q] [DIR_OR_FILE ...]

   Walks the given directories (default: lib bin bench examples test
   tools), lints every .ml/.mli, prints one "file:line: [rule-id]
   message" diagnostic per violation, and exits 0 when clean, 1 on
   violations, 2 on usage or I/O errors — suitable for CI and the
   `dune build @lint` alias. *)

let default_dirs = [ "lib"; "bin"; "bench"; "examples"; "test"; "tools" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quiet = List.mem "-q" args in
  if List.mem "--list-rules" args then begin
    List.iter
      (fun (id, descr) -> Printf.printf "%-14s %s\n" id descr)
      (Lint_engine.rule_ids
      @ [ ("missing-mli", Lint_engine.missing_mli_description) ]);
    exit 0
  end;
  let paths =
    match List.filter (fun a -> a <> "-q") args with
    | [] -> List.filter Sys.file_exists default_dirs
    | paths -> paths
  in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then begin
    List.iter (Printf.eprintf "nettomo-lint: no such path: %s\n") missing;
    exit 2
  end;
  match Lint_engine.run_paths paths with
  | [] ->
      if not quiet then
        Printf.printf "nettomo-lint: clean (%s)\n" (String.concat " " paths);
      exit 0
  | violations ->
      List.iter
        (fun v -> print_endline (Lint_engine.violation_to_string v))
        violations;
      Printf.eprintf "nettomo-lint: %d violation(s)\n" (List.length violations);
      exit 1
  | exception Sys_error msg ->
      Printf.eprintf "nettomo-lint: %s\n" msg;
      exit 2
