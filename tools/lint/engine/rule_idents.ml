(* Identifier-based rules: forbidden or restricted names. These were
   v1 token rules; on the AST they can no longer be fooled by strings,
   comments, or field/label positions. *)

open Ast_engine

(* obj-magic: [Obj.magic] defeats the type system entirely; the graph
   and linear-algebra invariants cannot survive it. *)
let check_obj_magic source =
  on_structure source @@ fun str ->
  let out = ref [] in
  iter_expressions_str str (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt; loc } when lid_ends [ "Obj"; "magic" ] txt ->
          out :=
            v ~line:(line_of_loc loc) ~rule_id:"obj-magic"
              "Obj.magic is forbidden"
            :: !out
      | _ -> ());
  List.rev !out

(* bare-failwith: raises in lib/ must be typed (named exceptions) or
   routed through the Errors module so escape hatches stay greppable.
   An unqualified [failwith]/[invalid_arg] identifier is the bare
   stdlib one; qualified uses ([Errors.invalid_arg]) are deliberate. *)
let check_bare_failwith source =
  on_structure source @@ fun str ->
  let out = ref [] in
  iter_expressions_str str (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident
          { txt = Longident.Lident (("failwith" | "invalid_arg") as name); loc }
        ->
          out :=
            v ~line:(line_of_loc loc) ~rule_id:"bare-failwith"
              (Printf.sprintf
                 "bare %s in lib/; use a named exception or \
                  Nettomo_util.Errors"
                 name)
            :: !out
      | _ -> ());
  List.rev !out

(* wall-clock: every wall-time read goes through Obs.Clock so the
   injectable fake clock can make traces and timings byte-deterministic
   in golden tests. Any [gettimeofday] is a wall read regardless of
   qualification; [time] only when it is [Unix.time] ([Sys.time] is CPU
   time and stays allowed). *)
let check_wall_clock source =
  on_structure source @@ fun str ->
  let out = ref [] in
  iter_expressions_str str (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt; loc }
        when lid_last txt = "gettimeofday" || lid_ends [ "Unix"; "time" ] txt ->
          out :=
            v ~line:(line_of_loc loc) ~rule_id:"wall-clock"
              "direct wall-clock read; route through Nettomo_obs.Obs.Clock.now"
            :: !out
      | _ -> ());
  List.rev !out

(* no-raw-stderr: library and bench code must not write to stderr
   directly — diagnostics go through the structured Obs.Log so they
   carry request attribution, respect the level gate and land in the
   --log file. [eprintf] catches Printf.eprintf and Format.eprintf
   alike (any qualification); the [prerr_*] family is the bare stdlib
   channel. bin/ keeps raw stderr: CLI usage errors are for humans on
   a terminal, not for the event log. *)
let check_raw_stderr source =
  on_structure source @@ fun str ->
  let out = ref [] in
  iter_expressions_str str (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt; loc }
        when lid_last txt = "eprintf"
             ||
             match txt with
             | Longident.Lident
                 ( "prerr_endline" | "prerr_string" | "prerr_newline"
                 | "prerr_char" | "prerr_bytes" | "prerr_int" | "prerr_float" )
               ->
                 true
             | _ -> false ->
          out :=
            v ~line:(line_of_loc loc) ~rule_id:"no-raw-stderr"
              "raw stderr write in library code; emit a structured event via \
               Nettomo_obs.Obs.Log"
            :: !out
      | _ -> ());
  List.rev !out

let rules =
  [
    {
      id = "obj-magic";
      description = "no Obj.magic anywhere";
      fix_hint = "express the conversion with a real type or a codec";
      scope = Any_ml;
      allowlist = [];
      check = check_obj_magic;
    };
    {
      id = "bare-failwith";
      description =
        "no bare failwith/invalid_arg in lib/ outside the Errors module";
      fix_hint = "raise a named exception or use Nettomo_util.Errors";
      scope = Lib_ml;
      allowlist = [ "lib/util/errors.ml" ];
      check = check_bare_failwith;
    };
    {
      id = "wall-clock";
      description = "no direct Unix.gettimeofday / Unix.time outside Obs.Clock";
      fix_hint = "read time via Nettomo_obs.Obs.Clock.now";
      scope = Any_ml;
      allowlist = [ "lib/obs/obs.ml" ];
      check = check_wall_clock;
    };
    {
      id = "no-raw-stderr";
      description =
        "no Printf.eprintf / prerr_* in lib/ or bench/ outside Obs.Log";
      fix_hint = "emit a structured event via Nettomo_obs.Obs.Log";
      scope = Dirs_ml [ "lib"; "bench" ];
      allowlist = [ "lib/obs/obs.ml" ];
      check = check_raw_stderr;
    };
  ]
