(* AST analysis substrate for nettomo-lint v2.

   The v1 engine was a token lexer; it could not see binding structure
   (top-level vs local [ref]), handler arms beyond the first, or where
   a [Hashtbl.fold] result flows. This module parses every .ml file
   with the compiler's own parser ([compiler-libs.common]) and gives
   the per-rule modules a typed view of the parsetree plus the two
   things the parsetree drops: comments (for todo-issue and the
   in-source suppression syntax) and raw file paths (for scoping).

   No typedtree: rules run on the untyped AST, so anything described
   as "at non-scalar types" is a documented syntactic approximation
   (e.g. a tuple or constructor literal operand). That keeps the lint
   pass dependency-free and runnable before the project itself
   compiles. *)

type violation = {
  file : string;
  line : int;
  rule_id : string;
  message : string;
}

let violation_to_string v =
  Printf.sprintf "%s:%d: [%s] %s" v.file v.line v.rule_id v.message

let compare_violation a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> String.compare a.rule_id b.rule_id
      | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* Parsed source                                                       *)

type source = {
  path : string;
  structure : Parsetree.structure option;
      (** [None] for .mli files and for files that fail to parse. *)
  comments : (int * string) list;
      (** (line where the comment opens, full text incl. delimiters) *)
  parse_error : (int * string) option;
}

(* ------------------------------------------------------------------ *)
(* Comment scanner                                                     *)

(* The compiler parser discards comments, so a small scanner collects
   them: it only has to know enough lexical structure to avoid being
   fooled by comment openers inside string literals, quoted strings
   and char literals. *)

let is_lower c = c >= 'a' && c <= 'z'

let scan_comments src =
  let n = String.length src in
  let comments = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let bump_lines s = String.iter (fun c -> if c = '\n' then incr line) s in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start = !i and start_line = !line in
      let depth = ref 0 in
      let j = ref !i in
      let stop = ref false in
      while (not !stop) && !j < n do
        if !j + 1 < n && src.[!j] = '(' && src.[!j + 1] = '*' then begin
          incr depth;
          j := !j + 2
        end
        else if !j + 1 < n && src.[!j] = '*' && src.[!j + 1] = ')' then begin
          decr depth;
          j := !j + 2;
          if !depth = 0 then stop := true
        end
        else incr j
      done;
      let text = String.sub src start (!j - start) in
      bump_lines text;
      comments := (start_line, text) :: !comments;
      i := !j
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      let stop = ref false in
      while (not !stop) && !j < n do
        if src.[!j] = '\\' then j := !j + 2
        else if src.[!j] = '"' then begin
          incr j;
          stop := true
        end
        else begin
          if src.[!j] = '\n' then incr line;
          incr j
        end
      done;
      i := !j
    end
    else if c = '{' && !i + 1 < n && (src.[!i + 1] = '|' || is_lower src.[!i + 1])
    then begin
      (* possible quoted string {id|...|id} *)
      let j = ref (!i + 1) in
      while !j < n && is_lower src.[!j] do incr j done;
      if !j < n && src.[!j] = '|' then begin
        let id = String.sub src (!i + 1) (!j - !i - 1) in
        let closing = "|" ^ id ^ "}" in
        let cl = String.length closing in
        let k = ref (!j + 1) in
        let stop = ref false in
        while (not !stop) && !k < n do
          if !k + cl <= n && String.sub src !k cl = closing then begin
            bump_lines (String.sub src !i (!k + cl - !i));
            k := !k + cl;
            stop := true
          end
          else incr k
        done;
        i := !k
      end
      else incr i
    end
    else if c = '\'' then begin
      if !i + 1 < n && src.[!i + 1] = '\\' then begin
        (* escaped char literal *)
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' do incr j done;
        i := !j + 1
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then i := !i + 3 (* 'a' *)
      else incr i (* type variable quote *)
    end
    else incr i
  done;
  List.rev !comments

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let is_ml path = Filename.check_suffix path ".ml"
let is_mli path = Filename.check_suffix path ".mli"

let parse ~path content =
  let comments = scan_comments content in
  if not (is_ml path) then
    { path; structure = None; comments; parse_error = None }
  else
    let lexbuf = Lexing.from_string content in
    Location.init lexbuf path;
    match Parse.implementation lexbuf with
    | structure -> { path; structure = Some structure; comments; parse_error = None }
    | exception exn ->
        let default = (lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum, "syntax error") in
        let line, msg =
          match exn with
          | Syntaxerr.Error e -> (
              let loc = Syntaxerr.location_of_error e in
              ( loc.Location.loc_start.Lexing.pos_lnum,
                match e with
                | Syntaxerr.Unclosed (_, opening, _, _) ->
                    Printf.sprintf "unclosed %s" opening
                | _ -> "syntax error" ))
          | Lexer.Error (_, loc) ->
              (loc.Location.loc_start.Lexing.pos_lnum, "lexical error")
          | _ -> default
        in
        { path; structure = None; comments; parse_error = Some (line, msg) }

(* ------------------------------------------------------------------ *)
(* AST helpers                                                         *)

let line_of_loc (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* [Longident.flatten] aborts on [Lapply]; this variant approximates
   functor applications by their functor result path. *)
let rec flatten_lid acc = function
  | Longident.Lident s -> s :: acc
  | Longident.Ldot (l, s) -> flatten_lid (s :: acc) l
  | Longident.Lapply (_, l) -> flatten_lid acc l

let lid_parts lid = flatten_lid [] lid

let lid_last lid =
  match List.rev (lid_parts lid) with [] -> "" | last :: _ -> last

(* Does the identifier path end with the given suffix, e.g.
   [lid_ends ["Hashtbl"; "iter"]] matches both [Hashtbl.iter] and
   [Stdlib.Hashtbl.iter]. *)
let lid_ends suffix lid =
  let parts = lid_parts lid in
  let lp = List.length parts and ls = List.length suffix in
  lp >= ls
  &&
  let rec drop k = function xs when k = 0 -> xs | _ :: xs -> drop (k - 1) xs | [] -> [] in
  drop (lp - ls) parts = suffix

(* Iterate [f] over every expression in a structure (or any AST
   fragment reachable through the default iterator). *)
let iter_expressions_str str f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.Ast_iterator.structure it str

let iter_expressions_item item f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.Ast_iterator.structure_item it item

let iter_expressions_expr e0 f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.Ast_iterator.expr it e0

(* Does any expression in [e0] satisfy [p]? *)
let expr_exists e0 p =
  let found = ref false in
  iter_expressions_expr e0 (fun e -> if p e then found := true);
  !found

(* Strip syntactic wrappers that do not change what an expression
   denotes for our purposes. *)
let rec peel (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constraint (e, _)
  | Parsetree.Pexp_coerce (e, _, _)
  | Parsetree.Pexp_open (_, e) ->
      peel e
  | _ -> e

let rec pat_var (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> Some txt
  | Parsetree.Ppat_constraint (p, _) -> pat_var p
  | _ -> None

(* Module-level value bindings: bindings whose lifetime is the whole
   program, i.e. [Pstr_value] items of the file and of any nested
   [module X = struct ... end] — but not [let]s inside expressions.
   Functor bodies are skipped: their state is per-instantiation. *)
let module_level_bindings str =
  let rec of_structure acc str =
    List.fold_left
      (fun acc (item : Parsetree.structure_item) ->
        match item.Parsetree.pstr_desc with
        | Parsetree.Pstr_value (_, vbs) -> List.rev_append vbs acc
        | Parsetree.Pstr_module mb -> of_module_expr acc mb.Parsetree.pmb_expr
        | Parsetree.Pstr_recmodule mbs ->
            List.fold_left
              (fun acc mb -> of_module_expr acc mb.Parsetree.pmb_expr)
              acc mbs
        | Parsetree.Pstr_include incl ->
            of_module_expr acc incl.Parsetree.pincl_mod
        | _ -> acc)
      acc str
  and of_module_expr acc (me : Parsetree.module_expr) =
    match me.Parsetree.pmod_desc with
    | Parsetree.Pmod_structure s -> of_structure acc s
    | Parsetree.Pmod_constraint (me, _) -> of_module_expr acc me
    | _ -> acc
  in
  List.rev (of_structure [] str)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)

type scope = Lib_ml | Any_ml | Dirs_ml of string list

type rule = {
  id : string;
  description : string;
  fix_hint : string;
  scope : scope;
  allowlist : string list;  (** repo-relative path suffixes exempted *)
  check : source -> violation list;
      (** emits violations with [file = ""]; the driver fills it in *)
}

let path_has_segment seg path =
  List.mem seg (String.split_on_char '/' path)

let in_lib path = path_has_segment "lib" path

let in_scope rule path =
  match rule.scope with
  | Lib_ml -> in_lib path && is_ml path
  | Any_ml -> is_ml path || is_mli path
  | Dirs_ml dirs ->
      is_ml path && List.exists (fun d -> path_has_segment d path) dirs

let allowlisted rule path =
  List.exists
    (fun suffix ->
      path = suffix
      || Filename.check_suffix path ("/" ^ suffix)
      || Filename.check_suffix path suffix)
    rule.allowlist

let v ~line ~rule_id message = { file = ""; line; rule_id; message }

(* Run [f] only when the file parsed; comment-only rules bypass this. *)
let on_structure source f =
  match source.structure with None -> [] | Some str -> f str
