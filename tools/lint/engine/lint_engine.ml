(* nettomo-lint v2: AST-level domain-safety & determinism analyzer.

   The engine parses every .ml file with the compiler's parser
   (Ast_engine, on compiler-libs.common) and runs a table of per-rule
   modules over the parsetree; comments are scanned separately for the
   comment rules and for the in-source suppression syntax:

     (* nettomo-lint: allow <rule-id> — reason *)

   A suppression must carry a non-empty reason or it does not
   suppress. It silences findings of that rule on any line the comment
   covers plus the line immediately after it (so both end-of-line and
   comment-above styles work).

   Legacy findings can also be parked in a baseline file
   (file<TAB>rule<TAB>count); the CLI subtracts baselined counts so
   new violations fail CI while the backlog is burned down
   deliberately. *)

type violation = Ast_engine.violation = {
  file : string;
  line : int;
  rule_id : string;
  message : string;
}

let violation_to_string = Ast_engine.violation_to_string
let compare_violation = Ast_engine.compare_violation

(* ------------------------------------------------------------------ *)
(* Rule registry                                                       *)

let rules : Ast_engine.rule list =
  Rule_idents.rules @ Rule_compare.rules @ Rule_exn.rules
  @ Rule_mutable.rules @ Rule_order.rules @ Rule_span.rules
  @ Rule_comments.rules

let rule_ids =
  List.map (fun (r : Ast_engine.rule) -> (r.Ast_engine.id, r.Ast_engine.description)) rules

let fix_hint id =
  List.find_map
    (fun (r : Ast_engine.rule) ->
      if r.Ast_engine.id = id then Some r.Ast_engine.fix_hint else None)
    rules

let parse_error_description =
  "every .ml file parses (reported as rule parse-error)"

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)

type suppression = { s_rule : string; s_first : int; s_last : int }

let dash_tokens = [ "\xe2\x80\x94" (* — *); "-"; "--"; ":" ]

(* Parse one comment into a suppression, requiring a reason: a
   reasonless [allow] is deliberately inert so the finding keeps
   firing until somebody writes down why it is safe. *)
let suppression_of_comment (line, text) =
  let n_lines =
    String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 text
  in
  let words =
    String.split_on_char ' '
      (String.map (fun c -> if c = '\n' || c = '\t' then ' ' else c) text)
    |> List.filter (fun w -> w <> "")
  in
  let rec find = function
    | "nettomo-lint:" :: "allow" :: rule :: rest ->
        let reason = List.filter (fun w -> not (List.mem w dash_tokens)) rest in
        let reason = List.filter (fun w -> w <> "*)") reason in
        if reason = [] then None
        else Some { s_rule = rule; s_first = line; s_last = line + n_lines + 1 }
    | _ :: rest -> find rest
    | [] -> None
  in
  find words

let suppressions_of_comments comments =
  List.filter_map suppression_of_comment comments

let suppressed suppressions v =
  List.exists
    (fun s ->
      s.s_rule = v.rule_id && v.line >= s.s_first && v.line <= s.s_last)
    suppressions

(* ------------------------------------------------------------------ *)
(* Per-file driver                                                     *)

let lint_source ~path content =
  let source = Ast_engine.parse ~path content in
  let found =
    List.concat_map
      (fun (r : Ast_engine.rule) ->
        if Ast_engine.in_scope r path && not (Ast_engine.allowlisted r path)
        then r.Ast_engine.check source
        else [])
      rules
  in
  let found =
    match source.Ast_engine.parse_error with
    | Some (line, msg) when Ast_engine.is_ml path ->
        {
          file = "";
          line;
          rule_id = "parse-error";
          message = "file does not parse: " ^ msg;
        }
        :: found
    | _ -> found
  in
  let sup = suppressions_of_comments source.Ast_engine.comments in
  found
  |> List.filter (fun v -> not (suppressed sup v))
  |> List.map (fun v -> { v with file = path })
  |> List.sort compare_violation

(* missing-mli is file-set-level, not AST-level: every lib/ module
   needs an interface so the public surface is deliberate. *)
let missing_mli_description = "every lib/ .ml module has a sibling .mli"

let missing_mli files =
  let files_set = List.sort_uniq String.compare files in
  List.filter_map
    (fun f ->
      if Ast_engine.in_lib f && Ast_engine.is_ml f then
        let mli = f ^ "i" in
        if List.mem mli files_set then None
        else
          Some
            {
              file = f;
              line = 1;
              rule_id = "missing-mli";
              message = "lib/ module without an .mli interface";
            }
      else None)
    files_set

let lint_files files =
  let per_file =
    List.concat_map (fun (path, content) -> lint_source ~path content) files
  in
  List.sort compare_violation (per_file @ missing_mli (List.map fst files))

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)

(* One entry per (file, rule): [file<TAB>rule<TAB>count]. Counts, not
   line numbers, so unrelated edits shifting a file do not churn the
   baseline; '#' lines are comments. *)

let parse_baseline content =
  String.split_on_char '\n' content
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char '\t' line with
           | [ file; rule; count ] -> (
               match int_of_string_opt count with
               | Some n when n > 0 -> Some ((file, rule), n)
               | _ -> None)
           | _ -> None)

let count_by_file_rule violations =
  List.fold_left
    (fun acc v ->
      let key = (v.file, v.rule_id) in
      let prev = match List.assoc_opt key acc with Some n -> n | None -> 0 in
      (key, prev + 1) :: List.remove_assoc key acc)
    [] violations

let render_baseline violations =
  let entries =
    count_by_file_rule violations
    |> List.sort (fun ((f1, r1), _) ((f2, r2), _) ->
           match String.compare f1 f2 with
           | 0 -> String.compare r1 r2
           | c -> c)
  in
  String.concat ""
    ("# nettomo-lint baseline: legacy findings tolerated by `--baseline`.\n\
      # One entry per file/rule: file<TAB>rule<TAB>count. Burn it down;\n\
      # never add to it for new code.\n"
    :: List.map
         (fun ((file, rule), n) -> Printf.sprintf "%s\t%s\t%d\n" file rule n)
         entries)

(* Subtract baselined counts: the first [n] sorted findings of a
   (file, rule) pair are tolerated, anything beyond is new. *)
let apply_baseline baseline violations =
  let remaining = ref baseline in
  List.filter
    (fun v ->
      let key = (v.file, v.rule_id) in
      match List.assoc_opt key !remaining with
      | Some n when n > 0 ->
          remaining :=
            (key, n - 1) :: List.remove_assoc key !remaining;
          false
      | _ -> true)
    (List.sort compare_violation violations)

(* ------------------------------------------------------------------ *)
(* JSON diagnostics                                                    *)

(* Hand-rolled writer: the lint engine deliberately depends on nothing
   but compiler-libs, so it cannot use Jsonx. Output is sorted by
   (file, line, rule) and uses no non-deterministic source, so two
   runs over the same tree are byte-identical. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json violations =
  let violations = List.sort compare_violation violations in
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf
           "\n  {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \
            \"message\": \"%s\"%s}"
           (json_escape v.file) v.line (json_escape v.rule_id)
           (json_escape v.message)
           (match fix_hint v.rule_id with
           | Some hint -> Printf.sprintf ", \"fix\": \"%s\"" (json_escape hint)
           | None -> "")))
    violations;
  Buffer.add_string b (if violations = [] then "]\n" else "\n]\n");
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Filesystem walk                                                     *)

let rec walk dir acc =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.fold_left
    (fun acc entry ->
      if String.length entry = 0 || entry.[0] = '.' || entry.[0] = '_' then acc
      else
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk path acc
        else if
          Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
        then path :: acc
        else acc)
    acc entries

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_paths paths =
  let files =
    List.concat_map
      (fun p -> if Sys.is_directory p then walk p [] else [ p ])
      paths
    |> List.sort String.compare
  in
  lint_files (List.map (fun f -> (f, read_file f)) files)
