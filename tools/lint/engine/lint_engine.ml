(* Project linter engine: a lightweight OCaml lexer plus a table of
   token-level rules. Deliberately lexical — no typedtree — so it runs
   on the raw tree with zero build dependencies; each rule documents the
   approximation it makes. *)

type violation = { file : string; line : int; rule_id : string; message : string }

let violation_to_string v =
  Printf.sprintf "%s:%d: [%s] %s" v.file v.line v.rule_id v.message

let compare_violation a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> String.compare a.rule_id b.rule_id | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token = { text : string; tline : int }

type lexed = {
  tokens : token array;
  comments : (int * string) list;  (** line where the comment opens, full text *)
}

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_op_char c = String.contains "!$%&*+-./:<=>?@^|~#" c

(* Tokenize OCaml source: identifiers (including leading-quote type
   variables), operator clusters, and single-character punctuation.
   Strings (including {xxx|...|xxx} quoted strings) and character
   literals vanish; comments are collected separately for the
   comment-level rules. *)
let lex src =
  let n = String.length src in
  let tokens = ref [] and comments = ref [] in
  let line = ref 1 in
  let emit text tline = tokens := { text; tline } :: !tokens in
  let i = ref 0 in
  let bump_lines s =
    String.iter (fun c -> if c = '\n' then incr line) s
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment, nested *)
      let start = !i and start_line = !line in
      let depth = ref 0 in
      let j = ref !i in
      let stop = ref false in
      while not !stop && !j < n do
        if !j + 1 < n && src.[!j] = '(' && src.[!j + 1] = '*' then begin
          incr depth; j := !j + 2
        end
        else if !j + 1 < n && src.[!j] = '*' && src.[!j + 1] = ')' then begin
          decr depth;
          j := !j + 2;
          if !depth = 0 then stop := true
        end
        else incr j
      done;
      let text = String.sub src start (!j - start) in
      bump_lines text;
      comments := (start_line, text) :: !comments;
      i := !j
    end
    else if c = '"' then begin
      (* string literal *)
      let j = ref (!i + 1) in
      let stop = ref false in
      while not !stop && !j < n do
        if src.[!j] = '\\' then j := !j + 2
        else if src.[!j] = '"' then begin incr j; stop := true end
        else begin
          if src.[!j] = '\n' then incr line;
          incr j
        end
      done;
      i := !j
    end
    else if c = '{' && !i + 1 < n
            && (src.[!i + 1] = '|'
               || (is_ident_start src.[!i + 1] && src.[!i + 1] <> '_')) then begin
      (* possible quoted string {id|...|id} *)
      let j = ref (!i + 1) in
      while !j < n && src.[!j] >= 'a' && src.[!j] <= 'z' do incr j done;
      if !j < n && src.[!j] = '|' then begin
        let id = String.sub src (!i + 1) (!j - !i - 1) in
        let closing = "|" ^ id ^ "}" in
        let cl = String.length closing in
        let k = ref (!j + 1) in
        let stop = ref false in
        while not !stop && !k < n do
          if !k + cl <= n && String.sub src !k cl = closing then begin
            bump_lines (String.sub src !i (!k + cl - !i));
            k := !k + cl;
            stop := true
          end
          else incr k
        done;
        i := !k
      end
      else begin
        emit "{" !line;
        incr i
      end
    end
    else if c = '\'' then begin
      (* char literal or type variable *)
      if !i + 1 < n && src.[!i + 1] = '\\' then begin
        (* escaped char literal *)
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' do incr j done;
        i := !j + 1
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then i := !i + 3 (* 'a' *)
      else incr i (* type variable quote; identifier follows as a token *)
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      emit (String.sub src !i (!j - !i)) !line;
      i := !j
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while
        !j < n
        && (is_ident_char src.[!j] || src.[!j] = '.' || src.[!j] = 'x')
      do
        incr j
      done;
      i := !j
    end
    else if is_op_char c then begin
      let j = ref !i in
      while !j < n && is_op_char src.[!j] do incr j done;
      emit (String.sub src !i (!j - !i)) !line;
      i := !j
    end
    else begin
      emit (String.make 1 c) !line;
      incr i
    end
  done;
  { tokens = Array.of_list (List.rev !tokens); comments = List.rev !comments }

(* ------------------------------------------------------------------ *)
(* Rule table                                                          *)

type scope = Lib_ml | Any_ml

type rule = {
  id : string;
  description : string;
  scope : scope;
  allowlist : string list;  (** repo-relative path suffixes exempted *)
  check : path:string -> lexed -> violation list;
}

let path_has_segment seg path =
  let parts = String.split_on_char '/' path in
  List.mem seg parts

let in_lib path = path_has_segment "lib" path

let is_ml path = Filename.check_suffix path ".ml"

let in_scope rule path =
  match rule.scope with
  | Lib_ml -> in_lib path && is_ml path
  | Any_ml -> is_ml path || Filename.check_suffix path ".mli"

let allowlisted rule path =
  List.exists
    (fun suffix -> path = suffix || Filename.check_suffix path ("/" ^ suffix)
                   || Filename.check_suffix path suffix)
    rule.allowlist

let tok tokens k = if k >= 0 && k < Array.length tokens then tokens.(k).text else ""

(* obj-magic: [Obj.magic] defeats the type system entirely; the graph
   and linear-algebra invariants cannot survive it. *)
let check_obj_magic ~path:_ lexed =
  let t = lexed.tokens in
  let out = ref [] in
  Array.iteri
    (fun k token ->
      if token.text = "Obj" && tok t (k + 1) = "." && tok t (k + 2) = "magic"
      then
        out :=
          { file = ""; line = token.tline; rule_id = "obj-magic";
            message = "Obj.magic is forbidden" }
          :: !out)
    t;
  List.rev !out

(* bare-failwith: raises must be typed (named exceptions) or routed
   through the Errors module so escape hatches stay greppable. Lexical
   approximation: a bare (unqualified) [failwith]/[invalid_arg]
   identifier; [Errors.invalid_arg] is fine because the previous token
   is a dot. *)
let check_bare_failwith ~path:_ lexed =
  let t = lexed.tokens in
  let out = ref [] in
  Array.iteri
    (fun k token ->
      if
        (token.text = "failwith" || token.text = "invalid_arg")
        && tok t (k - 1) <> "."
      then
        out :=
          { file = ""; line = token.tline; rule_id = "bare-failwith";
            message =
              Printf.sprintf
                "bare %s in lib/; use a named exception or Nettomo_util.Errors"
                token.text }
          :: !out)
    t;
  List.rev !out

(* poly-compare: polymorphic structural comparison silently does the
   wrong thing on abstract types (Graph.t adjacency maps, cached
   counts); edges and nodes must go through Graph.edge_compare /
   Int.compare, rationals through Rational.compare. Lexical
   approximation: a bare [compare] identifier that is neither qualified
   (previous token [.]) nor a definition (previous token [let]/[and]).
   Files that define their own [let compare] are exempt — their bare
   [compare] is the local monomorphic one. *)
let check_poly_compare ~path:_ lexed =
  let t = lexed.tokens in
  let defines_compare = ref false in
  Array.iteri
    (fun k token ->
      if
        token.text = "compare"
        && (tok t (k - 1) = "let" || tok t (k - 1) = "and")
      then defines_compare := true)
    t;
  if !defines_compare then []
  else begin
    let out = ref [] in
    Array.iteri
      (fun k token ->
        let flagged =
          (token.text = "compare" && tok t (k - 1) <> "."
           && tok t (k - 1) <> "let" && tok t (k - 1) <> "and")
          || (token.text = "compare" && tok t (k - 1) = "."
             && tok t (k - 2) = "Stdlib")
        in
        if flagged then
          out :=
            { file = ""; line = token.tline; rule_id = "poly-compare";
              message =
                "polymorphic compare; use Int.compare, Graph.edge_compare, \
                 Rational.compare, ..." }
            :: !out)
      t;
    List.rev !out
  end

(* catch-all-try: [try ... with _ ->] swallows everything, including
   Invariant.Violation and asserts; handlers must name what they
   expect. Lexical approximation: tracks try/match/record-update [with]
   pairing through bracket nesting and flags a wildcard first handler
   arm of a [try]. Later arms ([try e with A -> .. | _ -> ..]) are out
   of lexical reach — reviewers cover those. *)
let check_catch_all ~path:_ lexed =
  let t = lexed.tokens in
  let out = ref [] in
  let stack = ref [] in
  let push x = stack := x :: !stack in
  (* pop through to the nearest opening bracket marker *)
  let pop_bracket () =
    let rec loop = function
      | [] -> []
      | `Bracket :: rest -> rest
      | (`Try _ | `Match) :: rest -> loop rest
    in
    stack := loop !stack
  in
  Array.iteri
    (fun k token ->
      match token.text with
      | "try" -> push (`Try token.tline)
      | "match" -> push `Match
      | "(" | "[" | "{" | "begin" | "struct" | "sig" | "object" ->
          push `Bracket
      | ")" | "]" | "}" | "end" -> pop_bracket ()
      | "with" -> (
          match !stack with
          | `Try _ :: rest | `Match :: rest -> (
              let arm =
                if tok t (k + 1) = "|" then k + 2 else k + 1
              in
              (match !stack with
              | `Try tline :: _
                when tok t arm = "_" && tok t (arm + 1) = "->" ->
                  out :=
                    { file = ""; line = tline; rule_id = "catch-all-try";
                      message =
                        "catch-all exception handler (try ... with _ ->); \
                         name the exceptions you expect" }
                    :: !out
              | _ -> ());
              stack := rest)
          | _ -> () (* record update or module constraint *))
      | _ -> ())
    t;
  List.rev !out

(* todo-issue: every TODO/XXX marker must reference an issue so stale
   markers are traceable; [TODO(#42)] or any [#42] in the comment. *)
let check_todo ~path:_ lexed =
  let has_marker text =
    let n = String.length text in
    let rec find i =
      if i + 4 > n then None
      else if String.sub text i 4 = "TODO" then Some "TODO"
      else if i + 3 <= n && String.sub text i 3 = "XXX" then Some "XXX"
      else find (i + 1)
    in
    find 0
  in
  let has_issue_ref text =
    let n = String.length text in
    let rec find i =
      if i + 2 > n then false
      else if
        text.[i] = '#' && text.[i + 1] >= '0' && text.[i + 1] <= '9'
      then true
      else find (i + 1)
    in
    find 0
  in
  List.filter_map
    (fun (line, text) ->
      match has_marker text with
      | Some marker when not (has_issue_ref text) ->
          Some
            { file = ""; line; rule_id = "todo-issue";
              message =
                Printf.sprintf
                  "%s marker without an issue reference (write %s(#NNN))"
                  marker marker }
      | _ -> None)
    lexed.comments

(* wall-clock: every wall-time read goes through Obs.Clock so the
   injectable fake clock can make traces and timings byte-deterministic
   in golden tests. Lexical approximation: any [gettimeofday]
   identifier, plus [time] qualified by [Unix]. [Sys.time] (CPU time)
   and [Unix.utimes]/[Unix.stat] stay allowed. *)
let check_wall_clock ~path:_ lexed =
  let t = lexed.tokens in
  let out = ref [] in
  Array.iteri
    (fun k token ->
      let flagged =
        token.text = "gettimeofday"
        || (token.text = "time" && tok t (k - 1) = "." && tok t (k - 2) = "Unix")
      in
      if flagged then
        out :=
          { file = ""; line = token.tline; rule_id = "wall-clock";
            message =
              "direct wall-clock read; route through Nettomo_obs.Obs.Clock.now" }
          :: !out)
    t;
  List.rev !out

let rules =
  [
    { id = "obj-magic";
      description = "no Obj.magic anywhere";
      scope = Any_ml; allowlist = []; check = check_obj_magic };
    { id = "bare-failwith";
      description =
        "no bare failwith/invalid_arg in lib/ outside the Errors module";
      scope = Lib_ml;
      allowlist = [ "lib/util/errors.ml" ];
      check = check_bare_failwith };
    { id = "poly-compare";
      description =
        "no polymorphic compare in lib/ (use Int.compare, \
         Graph.edge_compare, ...)";
      scope = Lib_ml; allowlist = []; check = check_poly_compare };
    { id = "catch-all-try";
      description = "no catch-all try ... with _ -> handlers";
      scope = Any_ml; allowlist = []; check = check_catch_all };
    { id = "todo-issue";
      description = "TODO/XXX markers must carry an issue reference (#NNN)";
      scope = Any_ml; allowlist = []; check = check_todo };
    { id = "wall-clock";
      description =
        "no direct Unix.gettimeofday / Unix.time outside Obs.Clock";
      scope = Any_ml;
      allowlist = [ "lib/obs/obs.ml" ];
      check = check_wall_clock };
  ]

let rule_ids = List.map (fun r -> (r.id, r.description)) rules

(* missing-mli is file-set-level, not token-level: every lib/ module
   needs an interface so the public surface is deliberate. *)
let missing_mli_description = "every lib/ .ml module has a sibling .mli"

let missing_mli files =
  let files_set = List.sort_uniq String.compare files in
  List.filter_map
    (fun f ->
      if in_lib f && is_ml f then
        let mli = f ^ "i" in
        if List.mem mli files_set then None
        else
          Some
            { file = f; line = 1; rule_id = "missing-mli";
              message = "lib/ module without an .mli interface" }
      else None)
    files_set

let lint_source ~path content =
  let lexed = lex content in
  List.concat_map
    (fun rule ->
      if in_scope rule path && not (allowlisted rule path) then
        List.map (fun v -> { v with file = path }) (rule.check ~path lexed)
      else [])
    rules

let lint_files files =
  let per_file = List.concat_map (fun (path, content) -> lint_source ~path content) files in
  List.sort compare_violation (per_file @ missing_mli (List.map fst files))

(* ------------------------------------------------------------------ *)
(* Filesystem walk                                                     *)

let rec walk dir acc =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.fold_left
    (fun acc entry ->
      if String.length entry = 0 || entry.[0] = '.' || entry.[0] = '_' then acc
      else
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk path acc
        else if
          Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
        then path :: acc
        else acc)
    acc entries

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_paths paths =
  let files =
    List.concat_map
      (fun p -> if Sys.is_directory p then walk p [] else [ p ])
      paths
    |> List.sort String.compare
  in
  lint_files (List.map (fun f -> (f, read_file f)) files)
