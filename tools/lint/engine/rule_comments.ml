(* Comment-level rules. The parsetree drops comments, so these run on
   the comment list collected by Ast_engine's scanner; they apply to
   .mli files too (which are otherwise not parsed). *)

open Ast_engine

(* todo-issue: every TODO/XXX marker must reference an issue so stale
   markers are traceable; [TODO(#42)] or any [#42] in the comment. *)
let has_marker text =
  let n = String.length text in
  let rec find i =
    if i + 4 > n then None
    else if String.sub text i 4 = "TODO" then Some "TODO"
    else if i + 3 <= n && String.sub text i 3 = "XXX" then Some "XXX"
    else find (i + 1)
  in
  find 0

let has_issue_ref text =
  let n = String.length text in
  let rec find i =
    if i + 2 > n then false
    else if text.[i] = '#' && text.[i + 1] >= '0' && text.[i + 1] <= '9' then
      true
    else find (i + 1)
  in
  find 0

let check_todo source =
  List.filter_map
    (fun (line, text) ->
      match has_marker text with
      | Some marker when not (has_issue_ref text) ->
          Some
            (v ~line ~rule_id:"todo-issue"
               (Printf.sprintf
                  "%s marker without an issue reference (write %s(#NNN))"
                  marker marker))
      | _ -> None)
    source.comments

let rules =
  [
    {
      id = "todo-issue";
      description = "TODO/XXX markers must carry an issue reference (#NNN)";
      fix_hint = "file the issue and write TODO(#NNN)";
      scope = Any_ml;
      allowlist = [];
      check = check_todo;
    };
  ]
