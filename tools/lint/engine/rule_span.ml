(* span-bracket: a manual timing bracket — read [Obs.Clock.now], run
   the work, read the clock again and [Obs.Metrics.observe] the
   difference — leaks its close side whenever the work raises: the
   histogram silently under-counts exactly the requests that failed.
   The close side must be exception-safe.

   Untyped-AST approximation: a top-level structure item that contains
   two or more [Clock.now] reads and at least one [Metrics.observe]
   call but no [Fun.protect] is an unprotected bracket (flagged at the
   first clock read). Items where the second read feeds a returned
   value rather than an observation (wall-clock reporting) have no
   [observe] and are not brackets. Use [Obs.Trace.span], or
   [Fun.protect ~finally:(fun () -> observe ...)]. *)

open Ast_engine

let is_clock_now txt =
  lid_last txt = "now" && List.mem "Clock" (lid_parts txt)

let is_observe txt = lid_last txt = "observe"

let is_fun_protect txt = lid_ends [ "Fun"; "protect" ] txt

let check source =
  on_structure source @@ fun str ->
  let out = ref [] in
  List.iter
    (fun item ->
      let clock_reads = ref [] in
      let observes = ref 0 and protects = ref 0 in
      iter_expressions_item item (fun e ->
          match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; loc } ->
              if is_clock_now txt then
                clock_reads := line_of_loc loc :: !clock_reads
              else if is_observe txt then incr observes
              else if is_fun_protect txt then incr protects
          | _ -> ());
      match List.rev !clock_reads with
      | first :: _ :: _ when !observes > 0 && !protects = 0 ->
          out :=
            v ~line:first ~rule_id:"span-bracket"
              "manual timing bracket (Clock.now ... Metrics.observe) without \
               Fun.protect; the observation is lost when the work raises — \
               use Obs.Trace.span or Fun.protect ~finally"
            :: !out
      | _ -> ())
    str;
  List.rev !out

let rules =
  [
    {
      id = "span-bracket";
      description =
        "manual Clock.now/Metrics.observe timing brackets must close via \
         Fun.protect (or use Obs.Trace.span)";
      fix_hint =
        "wrap the timed work in Fun.protect ~finally:(fun () -> observe ...) \
         or Obs.Trace.span";
      scope = Dirs_ml [ "lib"; "bin"; "bench" ];
      allowlist = [ "lib/obs/obs.ml" ];
      check;
    };
  ]
