(* Exception-handling rules.

   catch-all-try (ported from v1): a [try ... with _ ->] whose first
   handler arm is a wildcard catches everything — including
   Invariant.Violation, Out_of_memory and asserts. Name the exceptions
   you expect.

   catch-all-swallow (new, AST-only reach): wildcard arms the v1 lexer
   could not see — a [_] arm after named arms ([try e with A -> .. |
   _ -> ..]), a [match ... with exception _ ->] arm, or a handler that
   binds the exception to a variable and then never looks at it. All of
   these drop the exception value on the floor; a handler that
   re-raises (mentions [raise]/[raise_notrace]/[reraise]) is not a
   swallow. The Store's degrade-to-miss read path is the one documented
   place where swallowing is the contract, hence its allowlist. *)

open Ast_engine

let rec is_wildcard (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any -> true
  | Parsetree.Ppat_alias (p, _) | Parsetree.Ppat_constraint (p, _) ->
      is_wildcard p
  | _ -> false

let mentions_raise body =
  expr_exists body (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt; _ } -> (
          match lid_last txt with
          | "raise" | "raise_notrace" | "reraise" -> true
          | _ -> false)
      | _ -> false)

let mentions_var name body =
  expr_exists body (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt = Longident.Lident n; _ } -> n = name
      | _ -> false)

let swallows (c : Parsetree.case) =
  c.Parsetree.pc_guard = None
  && (not (mentions_raise c.Parsetree.pc_rhs))
  &&
  if is_wildcard c.Parsetree.pc_lhs then true
  else
    match pat_var c.Parsetree.pc_lhs with
    | Some name -> not (mentions_var name c.Parsetree.pc_rhs)
    | None -> false

let check_catch_all_try source =
  on_structure source @@ fun str ->
  let out = ref [] in
  iter_expressions_str str (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_try (_, { pc_lhs; pc_guard = None; _ } :: _)
        when is_wildcard pc_lhs ->
          out :=
            v
              ~line:(line_of_loc e.Parsetree.pexp_loc)
              ~rule_id:"catch-all-try"
              "catch-all exception handler (try ... with _ ->); name the \
               exceptions you expect"
            :: !out
      | _ -> ());
  List.rev !out

let check_catch_all_swallow source =
  on_structure source @@ fun str ->
  let out = ref [] in
  let flag line what =
    out :=
      v ~line ~rule_id:"catch-all-swallow"
        (Printf.sprintf
           "%s drops the exception; name it, use it, or re-raise" what)
      :: !out
  in
  iter_expressions_str str (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_try (_, first :: rest) ->
          (* the sole/first wildcard arm is catch-all-try's finding *)
          if
            (not (is_wildcard first.Parsetree.pc_lhs))
            && swallows first
            && pat_var first.Parsetree.pc_lhs <> None
          then
            flag
              (line_of_loc first.Parsetree.pc_lhs.Parsetree.ppat_loc)
              "handler binds the exception but never uses it";
          List.iter
            (fun (c : Parsetree.case) ->
              if swallows c then
                flag
                  (line_of_loc c.Parsetree.pc_lhs.Parsetree.ppat_loc)
                  "wildcard arm after named handlers")
            rest
      | Parsetree.Pexp_match (_, cases) ->
          List.iter
            (fun (c : Parsetree.case) ->
              match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
              | Parsetree.Ppat_exception p
                when is_wildcard p && swallows { c with pc_lhs = p } ->
                  flag
                    (line_of_loc c.Parsetree.pc_lhs.Parsetree.ppat_loc)
                    "match ... with exception _ ->"
              | _ -> ())
            cases
      | _ -> ());
  List.rev !out

let rules =
  [
    {
      id = "catch-all-try";
      description = "no catch-all try ... with _ -> handlers";
      fix_hint = "name the exceptions the expression can actually raise";
      scope = Any_ml;
      allowlist = [];
      check = check_catch_all_try;
    };
    {
      id = "catch-all-swallow";
      description =
        "no handler arm that silently drops the exception (late wildcard \
         arms, exception _ matches, unused bindings)";
      fix_hint =
        "match the specific exception, log/propagate the value, or re-raise";
      scope = Any_ml;
      allowlist = [ "lib/store/store.ml" ];
      check = check_catch_all_swallow;
    };
  ]
