(* hashtbl-iter-order: [Hashtbl.iter]/[Hashtbl.fold] enumerate buckets
   in hash order — a function of the key representation, the runtime's
   hash, and insertion history. Any result that reaches protocol,
   codec, metrics or report output unsorted makes golden transcripts
   and byte-reproducibility hostage to the Hashtbl implementation.

   Untyped-AST approximation of "flows into output without an
   intervening sort": within one top-level structure item, an
   occurrence of [Hashtbl.iter]/[Hashtbl.fold]/[Hashtbl.to_seq] is
   flagged unless the same item also applies a sorting function (an
   identifier whose last component starts with "sort"). Commutative
   folds (set union, counters) repair order by construction — sort the
   enumeration anyway or carry a suppression explaining why order
   cannot matter. *)

open Ast_engine

let is_hashtbl_enum txt =
  lid_ends [ "Hashtbl"; "iter" ] txt
  || lid_ends [ "Hashtbl"; "fold" ] txt
  || lid_ends [ "Hashtbl"; "to_seq" ] txt
  || lid_ends [ "Hashtbl"; "to_seq_keys" ] txt
  || lid_ends [ "Hashtbl"; "to_seq_values" ] txt

let starts_with_sort s =
  String.length s >= 4 && String.sub s 0 4 = "sort"

let check source =
  on_structure source @@ fun str ->
  let out = ref [] in
  List.iter
    (fun item ->
      let enums = ref [] and sorted = ref false in
      iter_expressions_item item (fun e ->
          match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; loc } ->
              if is_hashtbl_enum txt then
                enums := (line_of_loc loc, lid_last txt) :: !enums
              else if starts_with_sort (lid_last txt) then sorted := true
          | _ -> ());
      if not !sorted then
        List.iter
          (fun (line, name) ->
            out :=
              v ~line ~rule_id:"hashtbl-iter-order"
                (Printf.sprintf
                   "Hashtbl.%s enumerates in hash order; sort the result \
                    before it can reach any output, or suppress with the \
                    commutativity argument"
                   name)
              :: !out)
          (List.rev !enums))
    str;
  List.rev !out

let rules =
  [
    {
      id = "hashtbl-iter-order";
      description =
        "no unsorted Hashtbl.iter/fold enumeration in lib/bin/bench (hash \
         order must not reach output)";
      fix_hint =
        "collect the bindings, List.sort them with a typed comparator, then \
         iterate";
      scope = Dirs_ml [ "lib"; "bin"; "bench" ];
      allowlist = [];
      check;
    };
  ]
