(* poly-compare: polymorphic comparison silently does the wrong thing
   on abstract types (Graph.t adjacency maps, memo tables, rationals)
   and couples behaviour to representation. Three shapes are flagged:

   - a bare/Stdlib [compare] identifier — use the typed comparator
     (Int.compare, Graph.edge_compare, Rational.compare, ...);
   - [Hashtbl.hash] — its result depends on the value representation
     and the runtime's hash implementation; use Util.Checksum or a
     typed hash;
   - [=] / [<>] with a structured-literal operand (tuple, record,
     non-empty list, constructor or variant with a payload, array) —
     the untyped-AST approximation of "polymorphic equality at a
     non-scalar type". Comparisons against bare constructors
     ([x = None], [x = []]) only inspect the tag and stay allowed.

   A file that defines its own [compare] is exempt from the bare-
   [compare] shape: its unqualified [compare] is the local monomorphic
   one. *)

open Ast_engine

let defines_compare str =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match pat_var vb.Parsetree.pvb_pat with
          | Some "compare" -> found := true
          | Some _ | None -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.Ast_iterator.structure it str;
  !found

let structured_literal e =
  match (peel e).Parsetree.pexp_desc with
  | Parsetree.Pexp_tuple _ | Parsetree.Pexp_record _ | Parsetree.Pexp_array _
    ->
      true
  | Parsetree.Pexp_construct (_, Some _) ->
      (* [Some e], [x :: xs], [Edge (u, v)] — but not plain tags *)
      true
  | Parsetree.Pexp_variant (_, Some _) -> true
  | _ -> false

let check source =
  on_structure source @@ fun str ->
  let compare_defined = defines_compare str in
  let out = ref [] in
  let add line msg = out := v ~line ~rule_id:"poly-compare" msg :: !out in
  iter_expressions_str str (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt = Longident.Lident "compare"; loc }
        when not compare_defined ->
          add (line_of_loc loc)
            "polymorphic compare; use Int.compare, Graph.edge_compare, \
             Rational.compare, ..."
      | Parsetree.Pexp_ident { txt; loc } when lid_ends [ "Stdlib"; "compare" ] txt
        ->
          add (line_of_loc loc)
            "polymorphic compare; use Int.compare, Graph.edge_compare, \
             Rational.compare, ..."
      | Parsetree.Pexp_ident { txt; loc } when lid_ends [ "Hashtbl"; "hash" ] txt
        ->
          add (line_of_loc loc)
            "Hashtbl.hash is representation-dependent; use Util.Checksum or \
             a typed hash"
      | Parsetree.Pexp_apply
          ( { pexp_desc = Parsetree.Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
            [ (_, a); (_, b) ] )
        when structured_literal a || structured_literal b ->
          add (line_of_loc e.Parsetree.pexp_loc)
            (Printf.sprintf
               "polymorphic %s on a structured value; use a typed equality \
                (Option.equal, List.equal, Graph.edge_equal, ...)"
               op)
      | _ -> ());
  List.rev !out

let rules =
  [
    {
      id = "poly-compare";
      description =
        "no polymorphic compare/=/Hashtbl.hash at structured types in lib/ \
         (use Int.compare, Graph.edge_compare, ...)";
      fix_hint =
        "call the typed comparator/equality for the concrete type, or define \
         one next to the type";
      scope = Lib_ml;
      allowlist = [];
      check;
    };
  ]
