(** The [nettomo-lint] engine: a comment/string-aware OCaml lexer and a
    table of project rules, separated from the CLI so the test suite can
    exercise every rule on inline sources.

    Rules are lexical by design (no typedtree, zero build dependencies);
    each rule's implementation documents the approximation it makes.
    See DESIGN.md ("Correctness tooling") for the rule table and how to
    add a rule. *)

type violation = {
  file : string;
  line : int;  (** 1-based *)
  rule_id : string;
  message : string;
}

val violation_to_string : violation -> string
(** Machine-readable [file:line: [rule-id] message]. *)

val rule_ids : (string * string) list
(** Token/comment-level rules: id and one-line description. *)

val missing_mli_description : string

val lint_source : path:string -> string -> violation list
(** Run every applicable token/comment-level rule on one source file.
    [path] decides applicability (rule scope and allowlists); the
    content is lexed once. *)

val missing_mli : string list -> violation list
(** File-set-level rule: every [lib/**.ml] in the list must have its
    [.mli] in the list too. *)

val lint_files : (string * string) list -> violation list
(** [lint_files [(path, content); …]] = all rules, sorted by
    file/line. *)

val run_paths : string list -> violation list
(** Walk directories (files are taken as-is), reading [.ml]/[.mli]
    files, skipping dot- and underscore-prefixed directories, and lint
    everything found. *)
