(** nettomo-lint v2: AST-level domain-safety & determinism analyzer.

    Sources are parsed with the compiler's parser (compiler-libs); each
    rule is a table entry with an id, description and fix hint. See
    [Ast_engine] for the substrate and the per-rule modules for the
    individual checks. *)

type violation = Ast_engine.violation = {
  file : string;
  line : int;  (** 1-based *)
  rule_id : string;
  message : string;
}

val violation_to_string : violation -> string
(** Machine-readable [file:line: [rule-id] message]. *)

val compare_violation : violation -> violation -> int
(** Total order by (file, line, rule_id) — the output order. *)

val rules : Ast_engine.rule list

val rule_ids : (string * string) list
(** (id, description) per registered AST rule, registry order. *)

val fix_hint : string -> string option

val parse_error_description : string

val missing_mli_description : string

val missing_mli : string list -> violation list
(** File-set-level rule: every [lib/**.ml] in the list must have its
    [.mli] in the list too. *)

type suppression = { s_rule : string; s_first : int; s_last : int }

val suppression_of_comment : int * string -> suppression option
(** Parses [(* nettomo-lint: allow <rule-id> — reason *)]; [None] when
    the comment is not a suppression or carries no reason. *)

val lint_source : path:string -> string -> violation list
(** Parse and lint one file's content: every in-scope rule, parse
    errors reported as rule [parse-error], suppression comments
    applied. Sorted by (line, rule). *)

val lint_files : (string * string) list -> violation list
(** [lint_source] over each (path, content) plus [missing_mli], sorted
    by (file, line, rule). *)

val parse_baseline : string -> ((string * string) * int) list
(** Baseline file content -> tolerated count per (file, rule). *)

val render_baseline : violation list -> string

val apply_baseline :
  ((string * string) * int) list -> violation list -> violation list
(** Drop the first [n] findings of each baselined (file, rule). *)

val to_json : violation list -> string
(** Deterministic JSON diagnostics array, sorted by (file, line,
    rule); byte-identical across runs over the same tree. *)

val run_paths : string list -> violation list
(** Walk directories (files are taken as-is), reading [.ml]/[.mli]
    files, skipping dot- and underscore-prefixed directories, and lint
    everything found. Raises [Sys_error] on unreadable paths. *)
