(* unsafe-shared-mutable: module-level mutable state in lib/ outlives
   any one request and is visible to every Pool worker domain, so it is
   a data race waiting for the concurrent server to arrive. Flagged
   binding shapes (at the structure level of the file or of any nested
   [module X = struct ... end] — local [let]s inside functions are
   per-call and stay allowed):

   - [let x = ref ...]
   - [let x = Hashtbl.create ...] (also Queue/Stack/Buffer/Bytes)
   - [let x = Array.make ...] (and friends) or an array literal

   [Atomic.make ...] and [Mutex.create ...] bindings are the sanctioned
   forms and pass. The untyped AST cannot see whether a flagged binding
   is in fact guarded by an adjacent Mutex — guarded state documents
   itself with a suppression comment naming the guard:
   [(* nettomo-lint: allow unsafe-shared-mutable — guarded by foo_mu *)]. *)

open Ast_engine

let mutable_kind rhs =
  match (peel rhs).Parsetree.pexp_desc with
  | Parsetree.Pexp_apply ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, _)
    -> (
      match lid_parts txt with
      | [ "ref" ] -> Some "ref cell"
      | [ ("Hashtbl" | "Queue" | "Stack" | "Buffer"); "create" ]
      | [ "Stdlib"; ("Hashtbl" | "Queue" | "Stack" | "Buffer"); "create" ] ->
          Some "mutable container"
      | [ "Bytes"; ("create" | "make") ] -> Some "mutable container"
      | [ "Array"; ("make" | "create" | "init" | "of_list" | "create_matrix"
                    | "make_matrix") ] ->
          Some "mutable array"
      | _ -> None)
  | Parsetree.Pexp_array (_ :: _) -> Some "mutable array"
  | _ -> None

let check source =
  on_structure source @@ fun str ->
  List.filter_map
    (fun (vb : Parsetree.value_binding) ->
      match (pat_var vb.Parsetree.pvb_pat, mutable_kind vb.Parsetree.pvb_expr) with
      | Some name, Some kind ->
          Some
            (v
               ~line:(line_of_loc vb.Parsetree.pvb_loc)
               ~rule_id:"unsafe-shared-mutable"
               (Printf.sprintf
                  "top-level %s %S is shared across domains; use Atomic.t, \
                   guard it with a Mutex (and say so in a suppression), or \
                   make it per-call"
                  kind name))
      | _ -> None)
    (module_level_bindings str)

let rules =
  [
    {
      id = "unsafe-shared-mutable";
      description =
        "no unguarded top-level ref / mutable container in lib/ (Pool worker \
         domains share them)";
      fix_hint =
        "use Atomic.t, or a Mutex-guarded structure with a suppression \
         naming the guard";
      scope = Lib_ml;
      allowlist = [];
      check;
    };
  ]
